"""Unit tests for GroupAssignment."""

import numpy as np
import pytest

from repro.errors import GroupError
from repro.graph.digraph import DiGraph
from repro.graph.groups import GroupAssignment


def make_graph():
    graph = DiGraph()
    graph.add_node("a", group="g1")
    graph.add_node("b", group="g1")
    graph.add_node("c", group="g2")
    return graph


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(GroupError):
            GroupAssignment({})

    def test_from_graph(self):
        assignment = GroupAssignment.from_graph(make_graph())
        assert assignment.groups == ["g1", "g2"]
        assert assignment.size("g1") == 2
        assert assignment.size("g2") == 1

    def test_from_graph_unlabeled_node(self):
        graph = make_graph()
        graph.add_node("d")
        with pytest.raises(GroupError, match="no group label"):
            GroupAssignment.from_graph(graph)

    def test_from_labels(self):
        assignment = GroupAssignment.from_labels(["x", "y"], ["g", "g"])
        assert assignment.k == 1
        assert len(assignment) == 2

    def test_from_labels_length_mismatch(self):
        with pytest.raises(GroupError, match="differ in length"):
            GroupAssignment.from_labels(["x"], ["g", "g"])

    def test_deterministic_group_order(self):
        a = GroupAssignment({"n1": "z", "n2": "a", "n3": "m"})
        assert a.groups == sorted(a.groups, key=repr)


class TestQueries:
    def test_group_of(self):
        assignment = GroupAssignment.from_graph(make_graph())
        assert assignment.group_of("a") == "g1"
        with pytest.raises(GroupError):
            assignment.group_of("zzz")

    def test_members(self):
        assignment = GroupAssignment.from_graph(make_graph())
        assert sorted(assignment.members("g1")) == ["a", "b"]
        with pytest.raises(GroupError):
            assignment.members("nope")

    def test_sizes_aligned_with_groups(self):
        assignment = GroupAssignment.from_graph(make_graph())
        assert assignment.sizes().tolist() == [2, 1]

    def test_contains(self):
        assignment = GroupAssignment.from_graph(make_graph())
        assert "a" in assignment
        assert "zzz" not in assignment

    def test_size_unknown_group(self):
        assignment = GroupAssignment.from_graph(make_graph())
        with pytest.raises(GroupError, match="unknown group"):
            assignment.size("nope")


class TestValidation:
    def test_validate_ok(self):
        graph = make_graph()
        GroupAssignment.from_graph(graph).validate_for(graph)

    def test_missing_node(self):
        graph = make_graph()
        assignment = GroupAssignment({"a": "g1", "b": "g1"})
        with pytest.raises(GroupError, match="missing"):
            assignment.validate_for(graph)

    def test_extra_node(self):
        graph = make_graph()
        assignment = GroupAssignment(
            {"a": "g1", "b": "g1", "c": "g2", "ghost": "g2"}
        )
        with pytest.raises(GroupError, match="not in graph"):
            assignment.validate_for(graph)


class TestMasks:
    def test_masks_partition(self):
        graph = make_graph()
        assignment = GroupAssignment.from_graph(graph)
        masks = assignment.masks(graph)
        assert masks.shape == (2, 3)
        # Every node in exactly one group.
        assert (masks.sum(axis=0) == 1).all()
        assert masks.sum() == 3

    def test_masks_align_with_indices(self):
        graph = make_graph()
        assignment = GroupAssignment.from_graph(graph)
        masks = assignment.masks(graph)
        g2_row = assignment.groups.index("g2")
        assert masks[g2_row, graph.index_of("c")]


class TestRestriction:
    def test_restricted_to(self):
        assignment = GroupAssignment.from_graph(make_graph())
        sub = assignment.restricted_to(["a", "c"])
        assert len(sub) == 2
        assert sub.size("g1") == 1

    def test_restricted_to_empty(self):
        assignment = GroupAssignment.from_graph(make_graph())
        with pytest.raises(GroupError, match="empty"):
            assignment.restricted_to(["nope"])

    def test_as_dict_copy(self):
        assignment = GroupAssignment.from_graph(make_graph())
        d = assignment.as_dict()
        d["a"] = "mutated"
        assert assignment.group_of("a") == "g1"
