"""Cross-validation of the Monte Carlo estimator against exact values."""

import math

import pytest

from repro.errors import EstimationError
from repro.influence.exact import exact_group_utilities, exact_utility
from repro.influence.montecarlo import (
    monte_carlo_group_utilities,
    monte_carlo_utility,
)
from repro.graph.generators import path_graph


class TestMonteCarloUtility:
    def test_matches_exact_on_chain(self):
        graph = path_graph(4, activation_probability=0.6)
        exact = exact_utility(graph, [0], 2)
        estimate = monte_carlo_utility(graph, [0], 2, n_samples=3000, seed=0)
        assert estimate == pytest.approx(exact, abs=0.08)

    def test_infinite_deadline(self):
        graph = path_graph(3, activation_probability=1.0)
        assert monte_carlo_utility(graph, [0], math.inf, n_samples=5, seed=0) == 3.0

    def test_determinism(self, small_two_group):
        graph, _ = small_two_group
        a = monte_carlo_utility(graph, ["h"], 2, n_samples=50, seed=9)
        b = monte_carlo_utility(graph, ["h"], 2, n_samples=50, seed=9)
        assert a == b

    def test_validation(self, small_two_group):
        graph, _ = small_two_group
        with pytest.raises(EstimationError):
            monte_carlo_utility(graph, ["h"], 2, n_samples=0)
        with pytest.raises(EstimationError):
            monte_carlo_utility(graph, ["h"], -1)
        with pytest.raises(EstimationError):
            monte_carlo_utility(graph, ["h"], 2, model="sir")


class TestMonteCarloGroupUtilities:
    def test_matches_exact_per_group(self, small_two_group):
        graph, assignment = small_two_group
        exact = exact_group_utilities(graph, assignment, ["h"], 2)
        estimate = monte_carlo_group_utilities(
            graph, assignment, ["h"], 2, n_samples=4000, seed=1
        )
        for group in assignment.groups:
            assert estimate[group] == pytest.approx(exact[group], abs=0.12)

    def test_groups_sum_to_total_estimator(self, small_two_group):
        graph, assignment = small_two_group
        groups = monte_carlo_group_utilities(
            graph, assignment, ["h"], 3, n_samples=500, seed=2
        )
        total = monte_carlo_utility(graph, ["h"], 3, n_samples=500, seed=2)
        assert sum(groups.values()) == pytest.approx(total, abs=1e-9)

    def test_lt_model_runs(self, small_two_group):
        graph, assignment = small_two_group
        estimate = monte_carlo_group_utilities(
            graph, assignment, ["h"], 2, n_samples=100, model="lt", seed=3
        )
        assert estimate["big"] >= 1.0
