"""Unit tests for the cover solvers (P2 / P6)."""

import math

import pytest

from repro.errors import InfeasibleError, OptimizationError
from repro.influence.ensemble import WorldEnsemble
from repro.graph.generators import two_block_sbm
from repro.core.cover import solve_fair_tcim_cover, solve_tcim_cover


@pytest.fixture(scope="module")
def sbm_ensemble():
    graph, assignment = two_block_sbm(
        100, 0.7, 0.15, 0.01, activation_probability=0.2, seed=20
    )
    return WorldEnsemble(graph, assignment, n_worlds=60, seed=21)


class TestSolveTcimCover:
    def test_meets_population_quota(self, sbm_ensemble):
        solution = solve_tcim_cover(sbm_ensemble, quota=0.3, deadline=5)
        assert solution.report.population_fraction >= 0.3 - 1e-9

    def test_minimality_of_stop(self, sbm_ensemble):
        # One seed fewer must be below the quota (greedy stops ASAP).
        solution = solve_tcim_cover(sbm_ensemble, quota=0.3, deadline=5)
        if solution.size > 1:
            shorter = solution.trace.steps[-2].group_utilities.sum()
            population = float(sbm_ensemble.group_sizes.sum())
            assert shorter / population < 0.3

    def test_size_grows_with_quota(self, sbm_ensemble):
        small = solve_tcim_cover(sbm_ensemble, quota=0.2, deadline=5)
        large = solve_tcim_cover(sbm_ensemble, quota=0.4, deadline=5)
        assert large.size >= small.size

    def test_infeasible_quota_raises(self, sbm_ensemble):
        # Deadline 0 influences only the seeds; quota near 1 cannot be
        # met by the candidate pool... quota 1.0 requires every node.
        with pytest.raises(InfeasibleError):
            solve_tcim_cover(sbm_ensemble, quota=1.0, deadline=0, max_seeds=10)

    def test_invalid_quota(self, sbm_ensemble):
        with pytest.raises(OptimizationError):
            solve_tcim_cover(sbm_ensemble, quota=0.0, deadline=5)
        with pytest.raises(OptimizationError):
            solve_tcim_cover(sbm_ensemble, quota=1.5, deadline=5)

    def test_methods_agree(self, sbm_ensemble):
        celf = solve_tcim_cover(sbm_ensemble, quota=0.25, deadline=5, method="celf")
        plain = solve_tcim_cover(sbm_ensemble, quota=0.25, deadline=5, method="plain")
        assert celf.seeds == plain.seeds

    def test_deadline_zero_counts_seeds_only(self, sbm_ensemble):
        solution = solve_tcim_cover(sbm_ensemble, quota=0.05, deadline=0)
        assert solution.size == 5  # 5% of 100 nodes, one per seed


class TestSolveFairTcimCover:
    def test_every_group_meets_quota(self, sbm_ensemble):
        solution = solve_fair_tcim_cover(sbm_ensemble, quota=0.3, deadline=5)
        fractions = solution.report.fraction_influenced
        assert (fractions >= 0.3 - 1e-6).all()

    def test_disparity_bounded_by_one_minus_quota(self, sbm_ensemble):
        quota = 0.3
        solution = solve_fair_tcim_cover(sbm_ensemble, quota=quota, deadline=5)
        assert solution.report.disparity <= 1.0 - quota + 1e-6

    def test_needs_at_least_as_many_seeds_as_p2(self, sbm_ensemble):
        p2 = solve_tcim_cover(sbm_ensemble, quota=0.3, deadline=5)
        p6 = solve_fair_tcim_cover(sbm_ensemble, quota=0.3, deadline=5)
        assert p6.size >= p2.size

    def test_trace_records_every_iteration(self, sbm_ensemble):
        solution = solve_fair_tcim_cover(sbm_ensemble, quota=0.25, deadline=5)
        assert solution.trace.size == solution.size
        totals = [step.group_utilities.sum() for step in solution.trace.steps]
        assert totals == sorted(totals)

    def test_infeasible_per_group_quota(self, sbm_ensemble):
        with pytest.raises(InfeasibleError):
            solve_fair_tcim_cover(
                sbm_ensemble, quota=0.99, deadline=0, max_seeds=20
            )

    def test_quota_attribute(self, sbm_ensemble):
        solution = solve_fair_tcim_cover(sbm_ensemble, quota=0.2, deadline=5)
        assert solution.quota == 0.2

    def test_evaluate_at(self, sbm_ensemble):
        solution = solve_fair_tcim_cover(sbm_ensemble, quota=0.2, deadline=5)
        report = solution.evaluate_at(math.inf)
        assert report.total_utility >= solution.report.total_utility
