"""Solver-level backend equivalence: identical seed sequences everywhere.

The distance backends must be invisible to the solvers: ``lazy_greedy``
/ ``plain_greedy`` and the budget/cover solvers have deterministic
tie-breaking (lowest candidate position wins), so under shared worlds
every backend must produce *identical* seed sequences — not merely
close utilities.  The bundled illustrative example pins the expected
sequences as regression values; the paper-scale synthetic SBM checks
the same identity where the sparse backend's memory win is real.
"""

import math

import numpy as np
import pytest

from repro.datasets.example import illustrative_graph
from repro.datasets.synthetic import default_synthetic
from repro.influence.ensemble import WorldEnsemble
from repro.core.budget import solve_fair_tcim_budget, solve_tcim_budget
from repro.core.cover import solve_fair_tcim_cover, solve_tcim_cover
from repro.core.greedy import lazy_greedy, plain_greedy
from repro.core.objectives import ConcaveSumObjective, TotalInfluenceObjective

BACKENDS = ("dense", "sparse", "lazy")

#: Regression pins on the bundled example (n_worlds=120, world seed 5),
#: under the keyed per-(world, edge) IC sampler.  If these change,
#: common-random-numbers determinism broke somewhere.
PINNED_P1_SEEDS = ["a", "b", "r8", "r3"]
PINNED_P4_SEEDS = ["e", "r8", "b", "r3"]
PINNED_P2_SEEDS = ["a", "b"]
PINNED_P6_SEEDS = ["a", "r4"]


@pytest.fixture(scope="module")
def example_ensembles():
    graph, assignment = illustrative_graph()
    return {
        backend: WorldEnsemble(
            graph, assignment, n_worlds=120, seed=5, backend=backend
        )
        for backend in BACKENDS
    }


@pytest.mark.parametrize("backend", BACKENDS)
class TestPinnedSolutions:
    def test_p1_budget(self, example_ensembles, backend):
        solution = solve_tcim_budget(example_ensembles[backend], 4, 3)
        assert solution.seeds == PINNED_P1_SEEDS

    def test_p4_fair_budget(self, example_ensembles, backend):
        solution = solve_fair_tcim_budget(example_ensembles[backend], 4, 3)
        assert solution.seeds == PINNED_P4_SEEDS

    def test_p2_cover(self, example_ensembles, backend):
        solution = solve_tcim_cover(example_ensembles[backend], 0.4, 5)
        assert solution.seeds == PINNED_P2_SEEDS

    def test_p6_fair_cover(self, example_ensembles, backend):
        solution = solve_fair_tcim_cover(example_ensembles[backend], 0.4, 5)
        assert solution.seeds == PINNED_P6_SEEDS


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "objective_factory",
    [TotalInfluenceObjective, ConcaveSumObjective],
    ids=["total", "concave"],
)
def test_lazy_equals_plain_greedy(example_ensembles, backend, objective_factory):
    """CELF and the reference oracle agree under every backend."""
    ensemble = example_ensembles[backend]
    objective = objective_factory()
    for deadline in (2, 3, math.inf):
        celf = lazy_greedy(ensemble, objective, deadline=deadline, max_seeds=3)
        plain = plain_greedy(ensemble, objective, deadline=deadline, max_seeds=3)
        assert celf.seeds == plain.seeds, f"{backend} tau={deadline}"
        np.testing.assert_allclose(
            celf.final_group_utilities, plain.final_group_utilities
        )


def test_traces_identical_across_backends(example_ensembles):
    """Full audit trails — picks, gains, utilities — match exactly."""
    objective = ConcaveSumObjective()
    reference = lazy_greedy(
        example_ensembles["dense"], objective, deadline=3, max_seeds=4
    )
    for backend in ("sparse", "lazy"):
        trace = lazy_greedy(
            example_ensembles[backend], objective, deadline=3, max_seeds=4
        )
        assert trace.seeds == reference.seeds
        for step, ref_step in zip(trace.steps, reference.steps):
            assert step.position == ref_step.position
            assert step.gain == ref_step.gain
            np.testing.assert_array_equal(
                step.group_utilities, ref_step.group_utilities
            )


class TestPaperScaleSynthetic:
    """The acceptance-criteria check: byte-identical seeds on the
    Rice-sized synthetic SBM with the sparse backend measurably below
    the dense tensor's footprint."""

    @pytest.fixture(scope="class")
    def sbm_ensembles(self):
        graph, assignment = default_synthetic(seed=0)
        return {
            backend: WorldEnsemble(
                graph, assignment, n_worlds=60, seed=9, backend=backend
            )
            for backend in BACKENDS
        }

    def test_lazy_greedy_seeds_identical(self, sbm_ensembles):
        seeds = {
            backend: lazy_greedy(
                ensemble, TotalInfluenceObjective(), deadline=20, max_seeds=5
            ).seeds
            for backend, ensemble in sbm_ensembles.items()
        }
        assert seeds["dense"] == [264, 96, 19, 226, 329]
        assert seeds["sparse"] == seeds["dense"]
        assert seeds["lazy"] == seeds["dense"]

    def test_sparse_memory_below_dense(self, sbm_ensembles):
        dense_bytes = sbm_ensembles["dense"].memory_bytes()
        sparse_bytes = sbm_ensembles["sparse"].memory_bytes()
        assert sparse_bytes < dense_bytes / 4, (
            f"sparse store ({sparse_bytes}B) should be well under the "
            f"dense tensor ({dense_bytes}B) on the sparse SBM"
        )

    def test_auto_picks_dense_at_this_scale(self):
        graph, assignment = default_synthetic(seed=0)
        ensemble = WorldEnsemble(
            graph, assignment, n_worlds=10, seed=9, backend="auto"
        )
        assert ensemble.backend_name == "dense"

    def test_auto_falls_to_sparse_under_tight_limit(self):
        graph, assignment = default_synthetic(seed=0)
        ensemble = WorldEnsemble(
            graph,
            assignment,
            n_worlds=10,
            seed=9,
            backend="auto",
            backend_options={"dense_limit": 1024},
        )
        assert ensemble.backend_name == "sparse"
        # The auto path reuses the selection probe as world 0's rows;
        # results must stay identical to an explicit sparse build.
        explicit = WorldEnsemble(
            graph, assignment, n_worlds=10, seed=9, backend="sparse"
        )
        seeds = graph.nodes()[:3]
        np.testing.assert_array_equal(
            ensemble.utilities_for(seeds, 20), explicit.utilities_for(seeds, 20)
        )

    def test_auto_drops_inapplicable_options(self):
        # cache_size only applies to lazy; auto resolving to dense must
        # ignore it rather than crash after sampling worlds.
        graph, assignment = default_synthetic(seed=0)
        ensemble = WorldEnsemble(
            graph,
            assignment,
            n_worlds=5,
            seed=9,
            backend="auto",
            backend_options={"cache_size": 16},
        )
        assert ensemble.backend_name == "dense"

    def test_auto_probe_reuse_on_small_candidate_pools(self):
        # With <= 256 candidates the auto probe is world 0's full CSR
        # and is handed to the sparse backend; results stay identical.
        graph, assignment = illustrative_graph()
        auto = WorldEnsemble(
            graph,
            assignment,
            n_worlds=15,
            seed=5,
            backend="auto",
            backend_options={"dense_limit": 16},
        )
        explicit = WorldEnsemble(
            graph, assignment, n_worlds=15, seed=5, backend="sparse"
        )
        assert auto.backend_name == "sparse"
        np.testing.assert_array_equal(
            auto.utilities_for(["a", "c"], 3), explicit.utilities_for(["a", "c"], 3)
        )

    def test_bad_backend_fails_before_world_sampling(self):
        graph, assignment = default_synthetic(seed=0)
        from repro.errors import EstimationError

        with pytest.raises(EstimationError, match="backend must be one of"):
            WorldEnsemble(graph, assignment, n_worlds=10**9, seed=9, backend="gpu")

    def test_auto_falls_to_lazy_under_tightest_limits(self):
        graph, assignment = default_synthetic(seed=0)
        ensemble = WorldEnsemble(
            graph,
            assignment,
            n_worlds=10,
            seed=9,
            backend="auto",
            backend_options={"dense_limit": 1024, "sparse_limit": 1024},
        )
        assert ensemble.backend_name == "lazy"
