"""Unit tests for disparity and utility reports (Eq. 2)."""

import numpy as np
import pytest

from repro.errors import GroupError
from repro.influence.utility import (
    disparity,
    normalized_utilities,
    utility_report,
)


class TestNormalizedUtilities:
    def test_basic(self):
        result = normalized_utilities([10.0, 5.0], [100, 50])
        assert result.tolist() == [0.1, 0.1]

    def test_mapping_inputs_sorted_consistently(self):
        result = normalized_utilities({"b": 5.0, "a": 10.0}, {"b": 50, "a": 100})
        assert result.tolist() == [0.1, 0.1]

    def test_shape_mismatch(self):
        with pytest.raises(GroupError, match="misaligned"):
            normalized_utilities([1.0], [1, 2])

    def test_zero_size_rejected(self):
        with pytest.raises(GroupError, match="positive"):
            normalized_utilities([1.0], [0])


class TestDisparity:
    def test_max_pairwise_gap(self):
        assert disparity([0.5, 0.1, 0.3]) == pytest.approx(0.4)

    def test_single_group_zero(self):
        assert disparity([0.7]) == 0.0

    def test_equal_groups_zero(self):
        assert disparity([0.2, 0.2, 0.2]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(GroupError):
            disparity([])

    def test_mapping_input(self):
        assert disparity({"x": 0.9, "y": 0.4}) == pytest.approx(0.5)


class TestUtilityReport:
    def make(self):
        return utility_report(
            groups=["g1", "g2"],
            utilities=[30.0, 6.0],
            group_sizes=[100, 50],
            deadline=5,
            seed_count=3,
        )

    def test_fractions(self):
        report = self.make()
        assert report.fraction_influenced.tolist() == [0.3, 0.12]
        assert report.total_utility == 36.0
        assert report.population_fraction == pytest.approx(36 / 150)

    def test_disparity(self):
        assert self.make().disparity == pytest.approx(0.18)

    def test_fraction_of(self):
        report = self.make()
        assert report.fraction_of("g2") == pytest.approx(0.12)
        with pytest.raises(GroupError):
            report.fraction_of("nope")

    def test_as_dict(self):
        d = self.make().as_dict()
        assert d["seed_count"] == 3
        assert d["groups"]["g1"] == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(GroupError, match="misaligned"):
            utility_report(["g"], [1.0, 2.0], [10], 1, 1)
        with pytest.raises(GroupError, match="positive"):
            utility_report(["g"], [1.0], [0], 1, 1)
        with pytest.raises(GroupError, match="non-negative"):
            utility_report(["g"], [-1.0], [10], 1, 1)
