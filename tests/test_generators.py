"""Unit tests for the graph generators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    _triangle_unrank,
    barabasi_albert,
    block_model_with_edge_counts,
    complete_graph,
    erdos_renyi,
    path_graph,
    random_groups,
    ring_graph,
    star_graph,
    stochastic_block_model,
    two_block_sbm,
    weighted_block_model,
)
from repro.graph.metrics import mixing_summary


class TestDeterministicShapes:
    def test_path(self):
        graph = path_graph(5)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4
        assert graph.has_edge(0, 1) and not graph.has_edge(1, 0)

    def test_star(self):
        graph = star_graph(4)
        assert graph.number_of_nodes() == 5
        assert graph.out_degree(0) == 4
        assert graph.in_degree(0) == 0

    def test_complete(self):
        graph = complete_graph(4)
        assert graph.number_of_edges() == 4 * 3

    def test_ring(self):
        graph = ring_graph(5)
        assert graph.number_of_edges() == 10
        assert graph.out_degree(0) == 2

    def test_bad_sizes(self):
        with pytest.raises(ConfigError):
            path_graph(0)
        with pytest.raises(ConfigError):
            ring_graph(2)
        with pytest.raises(ConfigError):
            star_graph(-1)
        with pytest.raises(ConfigError):
            complete_graph(0)


class TestErdosRenyi:
    def test_determinism(self):
        a = erdos_renyi(30, 0.2, seed=7)
        b = erdos_renyi(30, 0.2, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_edge_count_within_expectation(self):
        graph = erdos_renyi(100, 0.1, seed=0)
        expected = 100 * 99 / 2 * 0.1
        ties = graph.number_of_edges() / 2
        assert 0.6 * expected < ties < 1.4 * expected

    def test_extremes(self):
        assert erdos_renyi(20, 0.0, seed=0).number_of_edges() == 0
        assert erdos_renyi(10, 1.0, seed=0).number_of_edges() == 90

    def test_bad_probability(self):
        with pytest.raises(ConfigError):
            erdos_renyi(10, 1.5)


class TestSBM:
    def test_block_sizes_and_groups(self):
        graph, assignment = stochastic_block_model(
            [30, 20], 0.3, 0.02, seed=1
        )
        assert graph.number_of_nodes() == 50
        assert assignment.size("G1") == 30
        assert assignment.size("G2") == 20

    def test_homophily_dominates(self):
        graph, assignment = stochastic_block_model(
            [50, 50], 0.3, 0.01, seed=2
        )
        summary = mixing_summary(graph, assignment)
        assert summary.homophily_index > 0.8

    def test_two_block_majority_fraction(self):
        graph, assignment = two_block_sbm(100, 0.7, 0.1, 0.01, seed=3)
        assert assignment.size("G1") == 70
        assert assignment.size("G2") == 30

    def test_two_block_invalid_fraction(self):
        with pytest.raises(ConfigError):
            two_block_sbm(100, 1.2, 0.1, 0.01)

    def test_custom_group_names(self):
        _, assignment = stochastic_block_model(
            [5, 5], 0.5, 0.1, group_names=["left", "right"], seed=0
        )
        assert set(assignment.groups) == {"left", "right"}

    def test_group_names_length_mismatch(self):
        with pytest.raises(ConfigError):
            stochastic_block_model([5, 5], 0.5, 0.1, group_names=["only-one"])

    def test_activation_probability_applied(self):
        graph, _ = stochastic_block_model(
            [10, 10], 0.5, 0.5, activation_probability=0.42, seed=0
        )
        u, v, p = next(iter(graph.edges()))
        assert p == 0.42


class TestExactCountBlockModel:
    def test_exact_counts(self):
        counts = np.array([[10, 5], [5, 7]])
        graph, assignment = block_model_with_edge_counts(
            [10, 8], counts, activation_probability=0.1, seed=0
        )
        summary = mixing_summary(graph, assignment)
        directed = summary.edge_counts
        # Each within-block tie contributes 2 directed edges to the
        # diagonal; each cross tie contributes 1 to [0,1] and 1 to [1,0].
        assert directed[0, 0] == 2 * 10
        assert directed[1, 1] == 2 * 7
        assert directed[0, 1] == 5 and directed[1, 0] == 5

    def test_over_capacity_rejected(self):
        counts = np.array([[100, 0], [0, 0]])
        with pytest.raises(ConfigError, match="admit"):
            block_model_with_edge_counts([5, 5], counts, 0.1, seed=0)

    def test_asymmetric_rejected(self):
        counts = np.array([[0, 1], [2, 0]])
        with pytest.raises(ConfigError, match="symmetric"):
            block_model_with_edge_counts([5, 5], counts, 0.1)

    def test_determinism(self):
        counts = np.array([[6, 3], [3, 4]])
        a, _ = block_model_with_edge_counts([8, 6], counts, 0.1, seed=5)
        b, _ = block_model_with_edge_counts([8, 6], counts, 0.1, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())


class TestTriangleUnrank:
    def test_bijection(self):
        n = 9
        total = n * (n - 1) // 2
        us, vs = _triangle_unrank(np.arange(total), n)
        pairs = set(zip(us.tolist(), vs.tolist()))
        assert len(pairs) == total
        assert all(0 <= u < v < n for u, v in pairs)

    def test_matches_enumeration_order(self):
        n = 5
        expected = [(u, v) for u in range(n) for v in range(u + 1, n)]
        us, vs = _triangle_unrank(np.arange(len(expected)), n)
        assert list(zip(us.tolist(), vs.tolist())) == expected


class TestWeightedBlockModel:
    def test_exact_counts_preserved(self):
        counts = np.array([[20, 10], [10, 15]])
        graph, assignment = weighted_block_model(
            [15, 12], counts, 0.1, weight_exponents=[1.0, 0.0], seed=0
        )
        summary = mixing_summary(graph, assignment)
        directed = summary.edge_counts
        assert directed[0, 0] == 2 * 20
        assert directed[1, 1] == 2 * 15
        assert directed[0, 1] == 10 and directed[1, 0] == 10

    def test_skew_creates_hubs(self):
        counts = np.array([[200, 0], [0, 200]])
        graph, assignment = weighted_block_model(
            [50, 50], counts, 0.1, weight_exponents=[1.2, 0.0], seed=0
        )
        from repro.graph.metrics import degree_array

        degrees = degree_array(graph, "total")
        masks = assignment.masks(graph)
        skewed_max = degrees[masks[0]].max()
        uniform_max = degrees[masks[1]].max()
        assert skewed_max > 1.5 * uniform_max

    def test_zero_exponent_matches_uniform_stats(self):
        counts = np.array([[30]])
        graph, _ = weighted_block_model(
            [20], counts, 0.1, weight_exponents=[0.0], seed=1
        )
        assert graph.number_of_edges() == 60

    def test_pair_exponent_override(self):
        counts = np.array([[0, 120], [120, 0]])
        graph, assignment = weighted_block_model(
            [30, 30],
            counts,
            0.1,
            weight_exponents=[1.5, 1.5],
            pair_exponents={(0, 1): (0.0, 0.0)},
            seed=0,
        )
        from repro.graph.metrics import degree_array

        degrees = degree_array(graph, "total")
        # Uniform cross edges: no mega hub despite the heavy exponents.
        assert degrees.max() <= 4 * max(degrees.mean(), 1)

    def test_validation(self):
        counts = np.array([[2]])
        with pytest.raises(ConfigError):
            weighted_block_model([5], counts, 0.1, weight_exponents=[-1.0])
        with pytest.raises(ConfigError):
            weighted_block_model([5], counts, 0.1, weight_exponents=[0.0, 0.0])
        with pytest.raises(ConfigError):
            weighted_block_model(
                [5], counts, 0.1, weight_exponents=[0.0],
                pair_exponents={(0, 3): (0.0, 0.0)},
            )

    def test_saturation_fallback_completes(self):
        # Request nearly all pairs with heavy weights: the fallback
        # must still deliver the exact count.
        counts = np.array([[44]])
        graph, _ = weighted_block_model(
            [10], counts, 0.1, weight_exponents=[2.0], seed=0
        )
        assert graph.number_of_edges() == 88


class TestBarabasiAlbert:
    def test_size_and_hubs(self):
        graph = barabasi_albert(60, 2, seed=0)
        assert graph.number_of_nodes() == 60
        from repro.graph.metrics import degree_array

        degrees = degree_array(graph, "total")
        assert degrees.max() > 3 * degrees.mean()

    def test_validation(self):
        with pytest.raises(ConfigError):
            barabasi_albert(5, 0)
        with pytest.raises(ConfigError):
            barabasi_albert(3, 3)


class TestRandomGroups:
    def test_fraction_rounding(self):
        graph = erdos_renyi(10, 0.3, seed=0)
        assignment = random_groups(graph, [0.5, 0.5], seed=1)
        assert assignment.sizes().sum() == 10

    def test_updates_node_attributes(self):
        graph = erdos_renyi(6, 0.5, seed=0)
        assignment = random_groups(graph, [0.5, 0.5], seed=2)
        for node in graph.nodes():
            assert graph.group_of(node) == assignment.group_of(node)

    def test_bad_fractions(self):
        graph = erdos_renyi(6, 0.5, seed=0)
        with pytest.raises(ConfigError):
            random_groups(graph, [0.5, 0.3])
        with pytest.raises(ConfigError):
            random_groups(graph, [1.5, -0.5])
