"""Unit tests for centrality measures."""

import numpy as np
import pytest

from repro.graph.centrality import (
    betweenness,
    degree_centrality,
    group_centrality_gap,
    harmonic_closeness,
    pagerank,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_graph, path_graph, star_graph
from repro.graph.groups import GroupAssignment


class TestDegreeCentrality:
    def test_star_hub(self):
        scores = degree_centrality(star_graph(5), "out")
        assert scores[0] == 1.0
        assert scores[1] == 0.0

    def test_total_direction(self, tiny_path):
        scores = degree_centrality(tiny_path, "total")
        assert scores[1] == pytest.approx(2 / 3)

    def test_invalid_direction(self, tiny_path):
        with pytest.raises(ValueError):
            degree_centrality(tiny_path, "diagonal")

    def test_empty_graph(self):
        assert degree_centrality(DiGraph()) == {}


class TestPagerank:
    def test_sums_to_one(self):
        graph = complete_graph(5)
        ranks = pagerank(graph)
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_symmetric_graph_uniform(self):
        graph = complete_graph(4)
        ranks = pagerank(graph)
        values = list(ranks.values())
        assert max(values) - min(values) < 1e-8

    def test_sink_handling(self):
        # Node 2 is a sink (dangling); PageRank must still normalise.
        graph = DiGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        ranks = pagerank(graph)
        assert sum(ranks.values()) == pytest.approx(1.0)
        assert ranks[2] > ranks[0]

    def test_hub_attracts_rank(self):
        graph = star_graph(4).reverse()  # leaves point at the hub
        ranks = pagerank(graph)
        assert ranks[0] == max(ranks.values())

    def test_invalid_damping(self, tiny_path):
        with pytest.raises(ValueError):
            pagerank(tiny_path, damping=1.0)


class TestHarmonicCloseness:
    def test_path_head_highest(self, tiny_path):
        scores = harmonic_closeness(tiny_path)
        assert scores[0] == pytest.approx(1 + 0.5 + 1 / 3)
        assert scores[3] == 0.0

    def test_disconnected_contributes_zero(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        graph.add_node("isolated")
        scores = harmonic_closeness(graph)
        assert scores["isolated"] == 0.0
        assert scores["a"] == 1.0


class TestBetweenness:
    def test_path_middle_highest(self):
        graph = path_graph(5)
        # Make it undirected so interior nodes mediate paths both ways.
        for u in range(4):
            graph.add_edge(u + 1, u)
        scores = betweenness(graph)
        assert scores[2] == max(scores.values())
        assert scores[0] == 0.0

    def test_star_hub_mediates_everything(self):
        graph = star_graph(4)
        for leaf in (1, 2, 3, 4):
            graph.add_edge(leaf, 0)
        scores = betweenness(graph, normalized=False)
        # All 4*3 leaf-to-leaf shortest paths pass through the hub.
        assert scores[0] == pytest.approx(12.0)

    def test_normalization(self):
        graph = star_graph(4)
        for leaf in (1, 2, 3, 4):
            graph.add_edge(leaf, 0)
        normalized = betweenness(graph, normalized=True)
        assert normalized[0] == pytest.approx(12.0 / (4 * 3))


class TestGroupGap:
    def _fixture(self):
        graph = DiGraph()
        graph.add_node("hub", group="big")
        for i in range(3):
            graph.add_node(f"b{i}", group="big")
            graph.add_undirected_edge("hub", f"b{i}")
        graph.add_node("m0", group="small")
        graph.add_node("m1", group="small")
        graph.add_undirected_edge("m0", "m1")
        graph.add_undirected_edge("hub", "m0")
        return graph, GroupAssignment.from_graph(graph)

    @pytest.mark.parametrize(
        "measure", ["degree", "pagerank", "harmonic", "betweenness"]
    )
    def test_measures_run(self, measure):
        graph, assignment = self._fixture()
        gap = group_centrality_gap(graph, assignment, measure)
        assert set(gap) == {"big", "small"}

    def test_majority_more_central_by_degree(self):
        graph, assignment = self._fixture()
        gap = group_centrality_gap(graph, assignment, "degree")
        assert gap["big"] > gap["small"]

    def test_unknown_measure(self):
        graph, assignment = self._fixture()
        with pytest.raises(ValueError):
            group_centrality_gap(graph, assignment, "eigen-foo")
