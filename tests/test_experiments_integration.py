"""Integration tests: end-to-end experiment runs at reduced scale.

A representative subset of the registry (one per experiment family)
runs in quick mode; every qualitative shape check asserted by the
experiment must pass.  The benchmark suite covers the remaining ids —
together they execute every registered artifact.
"""

import pytest

from repro.experiments.registry import run_experiment

REPRESENTATIVE = [
    "fig1",     # illustrative example (brute force over pairs)
    "fig4a",    # synthetic budget: H comparison
    "fig4c",    # synthetic budget: deadline sweep
    "fig5b",    # graph properties: group sizes
    "fig6a",    # synthetic cover: iterations
    "fig6c",    # synthetic cover: sizes
    "thm1",     # Theorem 1 checker
    "thm2",     # Theorem 2 checker
    "abl_celf", # CELF ablation
    "abl_lt",   # Linear Threshold ablation
]


@pytest.mark.parametrize("experiment_id", REPRESENTATIVE)
def test_experiment_shape_checks_pass(experiment_id):
    result = run_experiment(experiment_id, quick=True, seed=0)
    failing = [c.as_text() for c in result.shape_checks if not c.passed]
    assert not failing, f"{experiment_id}: {failing}"
    assert result.rows
    assert result.columns


def test_experiments_are_deterministic():
    a = run_experiment("fig4a", quick=True, seed=0)
    b = run_experiment("fig4a", quick=True, seed=0)
    assert a.rows == b.rows


def test_seed_changes_sampled_graph():
    a = run_experiment("fig4a", quick=True, seed=0)
    b = run_experiment("fig4a", quick=True, seed=123)
    # Different random graphs: numeric rows should differ somewhere.
    assert a.rows != b.rows


def test_result_tables_render():
    result = run_experiment("fig6c", quick=True, seed=0)
    text = result.as_text()
    assert result.experiment_id in text
    assert "PASS" in text or "FAIL" in text
