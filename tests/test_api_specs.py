"""Spec-layer tests: validation fails fast, round-trips are lossless.

The declarative layer's contract is that a spec is a *value*: frozen,
eagerly validated with ``ConfigError``, equal to itself after any
``dict``/JSON round trip, and stably fingerprinted for the ensemble
cache.
"""

import json
import math

import pytest

from repro.api import (
    EnsembleSpec,
    ExecutionSpec,
    RunSpec,
    SolverSpec,
    spec_template,
)
from repro.errors import ConfigError


def budget_spec(**overrides) -> SolverSpec:
    base = dict(problem="budget", deadline=20.0, budget=5)
    base.update(overrides)
    return SolverSpec(**base)


def cover_spec(**overrides) -> SolverSpec:
    base = dict(problem="cover", deadline=20.0, quota=0.4)
    base.update(overrides)
    return SolverSpec(**base)


class TestRoundTrip:
    def full_spec(self) -> RunSpec:
        return RunSpec(
            ensemble=EnsembleSpec(
                dataset="synthetic",
                dataset_params={"n": 80, "activation_probability": 0.1},
                dataset_seed=3,
                n_worlds=7,
                model="lt",
                world_seed=11,
                candidates=(0, 1, 2, 5),
            ),
            solver=SolverSpec(
                problem="budget",
                deadline=12.0,
                fair=True,
                budget=3,
                concave="sqrt",
                weights=(1.0, 2.0),
                method="plain",
                discount=0.9,
            ),
            execution=ExecutionSpec(backend="sparse", workers=2, block_size=16),
        )

    def test_dict_round_trip_is_identity(self):
        spec = self.full_spec()
        data = spec.to_dict()
        assert RunSpec.from_dict(data) == spec
        # dict -> spec -> dict identity too (the acceptance criterion).
        assert RunSpec.from_dict(data).to_dict() == data

    def test_json_round_trip_is_identity(self):
        spec = self.full_spec()
        assert RunSpec.from_json(spec.to_json()) == spec
        # The JSON text is strict JSON (no Infinity/NaN literals).
        json.loads(spec.to_json())

    def test_infinite_deadline_round_trips_as_strict_json(self):
        spec = RunSpec(
            ensemble=EnsembleSpec(dataset="example"),
            solver=cover_spec(deadline=math.inf),
        )
        text = spec.to_json()
        assert '"inf"' in text
        back = RunSpec.from_json(text)
        assert math.isinf(back.solver.deadline)
        assert back == spec

    def test_template_round_trips_and_validates(self):
        for problem in ("budget", "cover"):
            spec = spec_template(problem)
            assert RunSpec.from_json(spec.to_json()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        data = spec_template().to_dict()
        data["solver"]["budgetz"] = 5
        with pytest.raises(ConfigError, match="budgetz"):
            RunSpec.from_dict(data)

    def test_from_dict_rejects_bad_version(self):
        data = spec_template().to_dict()
        data["version"] = 99
        with pytest.raises(ConfigError, match="version"):
            RunSpec.from_dict(data)

    def test_from_dict_tolerates_missing_version_and_execution(self):
        data = spec_template().to_dict()
        del data["version"]
        del data["execution"]
        spec = RunSpec.from_dict(data)
        assert spec.execution == ExecutionSpec()

    def test_from_json_rejects_non_json(self):
        with pytest.raises(ConfigError, match="not valid JSON"):
            RunSpec.from_json("{nope")

    def test_missing_required_keys_are_config_errors(self):
        # Never a raw TypeError: the CLI promises friendly failures.
        data = spec_template().to_dict()
        del data["ensemble"]["dataset"]
        with pytest.raises(ConfigError, match="dataset"):
            RunSpec.from_dict(data)
        data = spec_template().to_dict()
        del data["solver"]["deadline"]
        with pytest.raises(ConfigError, match="deadline"):
            RunSpec.from_dict(data)

    def test_malformed_values_are_config_errors(self):
        data = spec_template().to_dict()
        data["solver"]["weights"] = ["a", "b"]
        with pytest.raises(ConfigError, match="weights"):
            RunSpec.from_dict(data)
        data = spec_template().to_dict()
        data["solver"]["weights"] = 3
        with pytest.raises(ConfigError, match="weights"):
            RunSpec.from_dict(data)
        data = spec_template().to_dict()
        data["ensemble"]["candidates"] = [[1, 2]]
        with pytest.raises(ConfigError, match="candidates"):
            RunSpec.from_dict(data)

    def test_template_leaves_execution_unset(self):
        # All-null execution is what keeps CLI flags (session defaults)
        # in charge when solving a template-derived spec.
        for problem in ("budget", "cover"):
            assert spec_template(problem).execution == ExecutionSpec()


class TestEnsembleSpecValidation:
    def test_unknown_dataset(self):
        with pytest.raises(ConfigError, match="unknown dataset"):
            EnsembleSpec(dataset="imaginary")

    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="estimator kind"):
            EnsembleSpec(dataset="synthetic", kind="psychic")

    def test_rrset_kind_is_a_valid_spec(self):
        spec = EnsembleSpec(dataset="synthetic", kind="rrset")
        assert EnsembleSpec.from_dict(spec.to_dict()) == spec

    def test_rrset_knobs_round_trip(self):
        spec = EnsembleSpec(
            dataset="synthetic", kind="rrset", epsilon=0.2, delta=0.01
        )
        assert EnsembleSpec.from_dict(spec.to_dict()) == spec
        pinned = EnsembleSpec(dataset="synthetic", kind="rrset", theta=5000)
        assert EnsembleSpec.from_dict(pinned.to_dict()) == pinned

    def test_rrset_knobs_rejected_for_worlds(self):
        # kind="worlds" ignores the sampler knobs, so naming one is an
        # error — the echoed spec must describe the run that happened.
        for knob in (
            {"epsilon": 0.1},
            {"delta": 0.01},
            {"theta": 100},
            {"max_theta": 1000},
        ):
            with pytest.raises(ConfigError, match="rrset"):
                EnsembleSpec(dataset="synthetic", **knob)

    def test_rrset_knob_ranges(self):
        for bad in ({"epsilon": 0.0}, {"epsilon": 1.0}, {"epsilon": "x"}):
            with pytest.raises(ConfigError, match="epsilon"):
                EnsembleSpec(dataset="synthetic", kind="rrset", **bad)
        with pytest.raises(ConfigError, match="delta"):
            EnsembleSpec(dataset="synthetic", kind="rrset", delta=2.0)
        with pytest.raises(ConfigError, match="theta"):
            EnsembleSpec(dataset="synthetic", kind="rrset", theta=0)
        with pytest.raises(ConfigError, match="max_theta"):
            EnsembleSpec(dataset="synthetic", kind="rrset", max_theta=True)

    def test_theta_conflicts_with_adaptive_knobs(self):
        with pytest.raises(ConfigError, match="conflicts"):
            EnsembleSpec(
                dataset="synthetic", kind="rrset", theta=100, epsilon=0.1
            )
        with pytest.raises(ConfigError, match="conflicts"):
            EnsembleSpec(
                dataset="synthetic", kind="rrset", theta=100, max_theta=200
            )

    def test_rrset_requires_ic_model(self):
        with pytest.raises(ConfigError, match="model='ic'"):
            EnsembleSpec(dataset="synthetic", kind="rrset", model="lt")

    def test_bad_worlds_model_seeds(self):
        with pytest.raises(ConfigError, match="n_worlds"):
            EnsembleSpec(dataset="synthetic", n_worlds=0)
        with pytest.raises(ConfigError, match="model"):
            EnsembleSpec(dataset="synthetic", model="sir")
        with pytest.raises(ConfigError, match="seed"):
            EnsembleSpec(dataset="synthetic", dataset_seed=-1)
        with pytest.raises(ConfigError, match="seed"):
            EnsembleSpec(dataset="synthetic", world_seed="one")

    def test_bad_candidates(self):
        with pytest.raises(ConfigError, match="non-empty"):
            EnsembleSpec(dataset="synthetic", candidates=())
        with pytest.raises(ConfigError, match="duplicates"):
            EnsembleSpec(dataset="synthetic", candidates=(1, 1))

    def test_params_must_be_jsonable_str_keyed(self):
        with pytest.raises(ConfigError, match="JSON-serializable"):
            EnsembleSpec(dataset="synthetic", dataset_params={"n": object()})
        with pytest.raises(ConfigError, match="keys must be str"):
            EnsembleSpec(dataset="synthetic", dataset_params={1: 2})


class TestSolverSpecValidation:
    def test_problem_required_fields(self):
        with pytest.raises(ConfigError, match="problem"):
            SolverSpec(problem="p7", deadline=1.0)
        with pytest.raises(ConfigError, match="require 'budget'"):
            SolverSpec(problem="budget", deadline=1.0)
        with pytest.raises(ConfigError, match="require 'quota'"):
            SolverSpec(problem="cover", deadline=1.0)

    def test_cross_family_fields_rejected(self):
        with pytest.raises(ConfigError, match="cover"):
            budget_spec(quota=0.5)
        with pytest.raises(ConfigError, match="budget"):
            cover_spec(budget=3)
        with pytest.raises(ConfigError, match="discount"):
            cover_spec(discount=0.9)
        with pytest.raises(ConfigError, match="weights"):
            cover_spec(weights=(1.0, 2.0))
        with pytest.raises(ConfigError, match="weights"):
            budget_spec(fair=False, weights=(1.0, 2.0))
        # concave is rejected wherever the solve would ignore it, so
        # the echoed spec never misstates the objective that ran.
        with pytest.raises(ConfigError, match="concave"):
            budget_spec(fair=False, concave="sqrt")
        with pytest.raises(ConfigError, match="concave"):
            cover_spec(concave="sqrt")

    def test_numeric_ranges(self):
        with pytest.raises(ConfigError, match="budget"):
            budget_spec(budget=0)
        with pytest.raises(ConfigError, match="quota"):
            cover_spec(quota=1.5)
        with pytest.raises(ConfigError, match="deadline"):
            budget_spec(deadline=-1.0)
        with pytest.raises(ConfigError, match="discount"):
            budget_spec(discount=1.5)
        with pytest.raises(ConfigError, match="method"):
            budget_spec(method="greasy")
        with pytest.raises(ConfigError, match="concave"):
            budget_spec(concave="cos")

    def test_default_concave_resolves_to_log_in_the_echo(self):
        from repro.api import Session

        spec = RunSpec(
            ensemble=EnsembleSpec(
                dataset="synthetic",
                dataset_params={"n": 60},
                n_worlds=3,
            ),
            solver=budget_spec(budget=2, deadline=10.0),
        )
        assert spec.solver.concave is None
        result = Session().solve(spec)
        assert result.spec.solver.concave == "log"
        assert "H=log" in result.problem


class TestExecutionSpecValidation:
    def test_all_fields_optional(self):
        spec = ExecutionSpec()
        assert spec.backend is None and spec.workers is None
        assert spec.block_size is None and spec.build_workers is None

    def test_shared_validators(self):
        with pytest.raises(ConfigError, match="backend"):
            ExecutionSpec(backend="gpu")
        with pytest.raises(ConfigError, match="workers"):
            ExecutionSpec(workers=0)
        with pytest.raises(ConfigError, match="block_size"):
            ExecutionSpec(block_size=0)
        with pytest.raises(ConfigError, match="build_workers"):
            ExecutionSpec(build_workers=0)

    def test_build_workers_error_parity_with_workers(self):
        # Same phrasing family as check_workers, per the canonical
        # checkers (only the knob name differs).
        for bad in (0, -1, 2.5, "fast", True):
            with pytest.raises(ConfigError) as build_err:
                ExecutionSpec(build_workers=bad)
            with pytest.raises(ConfigError) as workers_err:
                ExecutionSpec(workers=bad)
            assert str(build_err.value) == str(workers_err.value).replace(
                "workers", "build_workers"
            )

    def test_build_workers_round_trips(self):
        for value in (None, 1, 4, "auto"):
            spec = ExecutionSpec(build_workers=value)
            assert spec.to_dict()["build_workers"] == value
            assert ExecutionSpec.from_dict(spec.to_dict()) == spec


class TestFingerprint:
    def test_equal_specs_hash_equal(self):
        a = EnsembleSpec(dataset="synthetic", dataset_params={"n": 80, "p_hom": 0.02})
        b = EnsembleSpec(dataset="synthetic", dataset_params={"p_hom": 0.02, "n": 80})
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_any_field_changes_fingerprint(self):
        base = EnsembleSpec(dataset="synthetic", n_worlds=10, world_seed=1)
        variants = [
            EnsembleSpec(dataset="synthetic", n_worlds=11, world_seed=1),
            EnsembleSpec(dataset="synthetic", n_worlds=10, world_seed=2),
            EnsembleSpec(dataset="synthetic", n_worlds=10, world_seed=1, model="lt"),
            EnsembleSpec(dataset="rice", n_worlds=10, world_seed=1),
        ]
        prints = {spec.fingerprint() for spec in variants}
        assert base.fingerprint() not in prints
        assert len(prints) == len(variants)

    def test_with_execution_shares_result_defining_specs(self):
        spec = spec_template()
        tweaked = spec.with_execution(backend="lazy", workers=2)
        assert tweaked.ensemble is spec.ensemble
        assert tweaked.solver is spec.solver
        assert tweaked.execution.backend == "lazy"
        assert tweaked.ensemble.fingerprint() == spec.ensemble.fingerprint()

    def test_build_workers_never_touches_the_fingerprint(self):
        # build_workers is execution-only: two runs differing solely in
        # it must share a cached ensemble.
        spec = spec_template()
        tweaked = spec.with_execution(build_workers=4)
        assert tweaked.execution.build_workers == 4
        assert tweaked.ensemble.fingerprint() == spec.ensemble.fingerprint()
