"""Unit tests for the budget solvers (P1 / P4)."""

import math

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.influence.ensemble import WorldEnsemble
from repro.graph.generators import two_block_sbm
from repro.core.budget import solve_fair_tcim_budget, solve_tcim_budget
from repro.core.concave import identity, log1p, sqrt


@pytest.fixture(scope="module")
def sbm_ensemble():
    graph, assignment = two_block_sbm(
        120, 0.75, 0.12, 0.005, activation_probability=0.15, seed=10
    )
    return WorldEnsemble(graph, assignment, n_worlds=60, seed=11)


class TestSolveTcimBudget:
    def test_respects_budget(self, sbm_ensemble):
        solution = solve_tcim_budget(sbm_ensemble, budget=5, deadline=5)
        assert len(solution.seeds) <= 5
        assert solution.report.seed_count == len(solution.seeds)

    def test_no_duplicate_seeds(self, sbm_ensemble):
        solution = solve_tcim_budget(sbm_ensemble, budget=8, deadline=5)
        assert len(set(solution.seeds)) == len(solution.seeds)

    def test_utility_grows_with_budget(self, sbm_ensemble):
        small = solve_tcim_budget(sbm_ensemble, budget=2, deadline=5)
        large = solve_tcim_budget(sbm_ensemble, budget=8, deadline=5)
        assert large.report.total_utility >= small.report.total_utility

    def test_greedy_prefix_property(self, sbm_ensemble):
        small = solve_tcim_budget(sbm_ensemble, budget=3, deadline=5)
        large = solve_tcim_budget(sbm_ensemble, budget=6, deadline=5)
        assert large.seeds[:3] == small.seeds

    def test_methods_agree(self, sbm_ensemble):
        celf = solve_tcim_budget(sbm_ensemble, budget=5, deadline=5, method="celf")
        plain = solve_tcim_budget(sbm_ensemble, budget=5, deadline=5, method="plain")
        assert celf.seeds == plain.seeds

    def test_validation(self, sbm_ensemble):
        with pytest.raises(OptimizationError):
            solve_tcim_budget(sbm_ensemble, budget=0, deadline=5)
        with pytest.raises(OptimizationError):
            solve_tcim_budget(sbm_ensemble, budget=10_000, deadline=5)
        with pytest.raises(OptimizationError):
            solve_tcim_budget(sbm_ensemble, budget=3, deadline=5, method="magic")

    def test_problem_label(self, sbm_ensemble):
        solution = solve_tcim_budget(sbm_ensemble, budget=2, deadline=5)
        assert "P1" in solution.problem

    def test_evaluate_at_other_deadline(self, sbm_ensemble):
        solution = solve_tcim_budget(sbm_ensemble, budget=4, deadline=5)
        early = solution.evaluate_at(1)
        late = solution.evaluate_at(math.inf)
        assert early.total_utility <= late.total_utility
        assert early.seed_count == late.seed_count == len(solution.seeds)


class TestSolveFairTcimBudget:
    def test_identity_recovers_p1(self, sbm_ensemble):
        p1 = solve_tcim_budget(sbm_ensemble, budget=5, deadline=5)
        p4 = solve_fair_tcim_budget(
            sbm_ensemble, budget=5, deadline=5, concave=identity
        )
        assert p1.seeds == p4.seeds

    def test_reduces_disparity_on_imbalanced_graph(self, sbm_ensemble):
        p1 = solve_tcim_budget(sbm_ensemble, budget=8, deadline=3)
        p4 = solve_fair_tcim_budget(
            sbm_ensemble, budget=8, deadline=3, concave=log1p
        )
        assert p4.report.disparity <= p1.report.disparity + 0.05

    def test_total_influence_cost_bounded(self, sbm_ensemble):
        # Weak sanity version of Theorem 1: the fair total should stay
        # a reasonable fraction of the unfair total.
        p1 = solve_tcim_budget(sbm_ensemble, budget=8, deadline=3)
        p4 = solve_fair_tcim_budget(sbm_ensemble, budget=8, deadline=3)
        assert p4.report.total_utility >= 0.5 * p1.report.total_utility

    def test_weights_steer_selection(self, sbm_ensemble):
        minority_index = int(np.argmin(sbm_ensemble.group_sizes))
        weights = np.ones(len(sbm_ensemble.group_names))
        weights[minority_index] = 10.0
        weighted = solve_fair_tcim_budget(
            sbm_ensemble, budget=6, deadline=3, concave=log1p, weights=weights
        )
        unweighted = solve_fair_tcim_budget(
            sbm_ensemble, budget=6, deadline=3, concave=log1p
        )
        assert (
            weighted.report.fraction_influenced[minority_index]
            >= unweighted.report.fraction_influenced[minority_index] - 1e-9
        )

    def test_problem_label_carries_h(self, sbm_ensemble):
        solution = solve_fair_tcim_budget(
            sbm_ensemble, budget=2, deadline=5, concave=sqrt
        )
        assert "sqrt" in solution.problem
