"""Solve service tests.

The headline contract mirrors the Session façade's: every byte the
service returns is **bit-identical** to ``Session.solve``/``resolve``
on the same spec — the HTTP layer adds no randomness and no
arithmetic.  On top of that sit the service-only behaviours: in-flight
dedup (N identical concurrent requests → one build, one solve),
ensemble batching across distinct solver specs, NDJSON trace
streaming, byte-bounded cache eviction, 429 shedding, 504 waiter
timeouts and graceful drain.

Everything runs against an in-process server on an ephemeral port
(``start_in_thread``) — no subprocesses, no fixed ports, no network
assumptions beyond loopback.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import (
    EnsembleSpec,
    ExecutionSpec,
    RunSpec,
    Session,
    SolverSpec,
)
from repro.errors import ConfigError
from repro.graph.delta import GraphDelta
from repro.service import (
    ServiceConfig,
    SolveService,
    parse_size,
    start_in_thread,
)

#: Small instance: sub-second builds, enough structure for real solves.
SYN_PARAMS = {"n": 120, "activation_probability": 0.08}


def run_spec(world_seed=7, budget=4, fair=True, backend=None, **solver) -> RunSpec:
    return RunSpec(
        ensemble=EnsembleSpec(
            dataset="synthetic",
            dataset_params=dict(SYN_PARAMS),
            dataset_seed=0,
            n_worlds=8,
            world_seed=world_seed,
        ),
        solver=SolverSpec(
            problem="budget", deadline=15.0, fair=fair, budget=budget, **solver
        ),
        execution=ExecutionSpec(backend=backend),
    )


def spec_dict(**kwargs) -> dict:
    return run_spec(**kwargs).to_dict()


def post(url, path, payload, raw=None):
    """POST JSON; returns (status, parsed-body) without raising."""
    body = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(url + path, data=body, method="POST")
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(url, path, method="GET"):
    request = urllib.request.Request(url + path, method=method)
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post_stream(url, path, payload):
    """POST and parse the NDJSON stream into a list of events."""
    body = json.dumps(payload).encode()
    request = urllib.request.Request(url + path, data=body, method="POST")
    with urllib.request.urlopen(request) as response:
        assert response.headers["Content-Type"] == "application/x-ndjson"
        return [json.loads(line) for line in response.read().splitlines()]


@pytest.fixture()
def server():
    handle = start_in_thread(ServiceConfig(port=0))
    yield handle
    handle.stop()


class TestParseSize:
    def test_plain_ints_and_suffixes(self):
        assert parse_size(123) == 123
        assert parse_size("123") == 123
        assert parse_size("4k") == 4 << 10
        assert parse_size("512M") == 512 << 20
        assert parse_size(" 1 g ") == 1 << 30

    @pytest.mark.parametrize("bad", ["huge", "0", "-3", "1.5m", "", "k", 0, -1, 1.5, True])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ConfigError):
            parse_size(bad)


class TestServiceConfig:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.port > 0
        assert config.cache_bytes is None
        assert config.request_timeout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"host": ""},
            {"port": 70000},
            {"port": -1},
            {"port": True},
            {"execution": "auto"},
            {"cache_bytes": 0},
            {"max_cached_ensembles": 0},
            {"solver_threads": 0},
            {"max_pending": 0},
            {"request_timeout": 0},
            {"drain_seconds": -1},
            {"max_body_bytes": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            ServiceConfig(**kwargs)

    def test_describe_is_json_safe(self):
        text = json.dumps(ServiceConfig().describe())
        assert "cache_bytes" in text


class TestBitIdentity:
    def test_solve_matches_session(self, server):
        spec = run_spec()
        status, body = post(server.url, "/v1/solve", spec.to_dict())
        assert status == 200
        expected = Session().solve(spec).to_dict()
        # The whole JSON document, not just the seeds: utilities,
        # objective, evaluations, stop reason... only timings differ.
        body.pop("timings"), expected.pop("timings")
        assert body == expected

    def test_stream_replays_the_exact_trace(self, server):
        spec = spec_dict()
        status, plain = post(server.url, "/v1/solve", spec)
        assert status == 200
        events = post_stream(server.url, "/v1/solve?stream=1", spec)
        steps = [e for e in events if e["event"] == "step"]
        assert [e["node"] for e in steps] == plain["seeds"]
        assert [e["index"] for e in steps] == list(range(len(steps)))
        assert steps[-1]["objective"] == plain["objective"]
        final = events[-1]
        assert final["event"] == "result"
        final["result"].pop("timings"), plain.pop("timings")
        assert final["result"] == plain

    def test_delta_matches_session_resolve(self, server):
        spec = run_spec()
        # Reweight a real edge of the same dataset the spec builds.
        graph = Session().ensemble_for(spec.ensemble).graph
        u, v, _ = next(iter(graph.edges()))
        delta = {"reweights": [[int(u), int(v), 0.9]]}

        status, _ = post(server.url, "/v1/solve", spec.to_dict())
        assert status == 200
        status, body = post(
            server.url, "/v1/delta", {"spec": spec.to_dict(), "delta": delta}
        )
        assert status == 200

        session = Session()
        session.solve(spec)
        expected = session.resolve(spec, GraphDelta.from_dict(delta)).to_dict()
        body.pop("timings"), expected.pop("timings")
        assert body == expected


class TestDedupAndBatching:
    def test_identical_concurrent_requests_share_one_solve(self, server):
        spec = spec_dict(world_seed=11)
        service = server.service
        results = []

        def worker():
            results.append(post(server.url, "/v1/solve", spec))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert [status for status, _ in results] == [200] * 6
        assert len({json.dumps(body["seeds"]) for _, body in results}) == 1
        # The acceptance criterion: exactly one ensemble build and one
        # greedy run served all six responses.
        assert service.session.cache_builds == 1
        assert service.counters["solves"] == 1
        assert service.counters["deduped"] == 5
        assert service.counters["solve_requests"] == 6

    def test_distinct_solvers_batch_onto_one_ensemble(self, server):
        service = server.service
        specs = [spec_dict(budget=b, world_seed=13) for b in (2, 3, 4)]
        results = []

        def worker(payload):
            results.append(post(server.url, "/v1/solve", payload))

        threads = [threading.Thread(target=worker, args=(s,)) for s in specs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert [status for status, _ in results] == [200] * 3
        # Three different solver specs, one shared world build.
        assert service.session.cache_builds == 1
        assert service.counters["solves"] == 3
        assert service.counters["deduped"] == 0

    def test_late_stream_subscriber_sees_full_trace(self, server):
        # A stream that attaches to an in-flight solve must replay the
        # buffered prefix: slow the solver down, attach mid-solve.
        spec = spec_dict(world_seed=17)
        session = server.service.session
        original = session.solve

        def slow(run):
            time.sleep(0.4)
            return original(run)

        session.solve = slow
        try:
            plain = {}

            def leader():
                plain["result"] = post(server.url, "/v1/solve", spec)

            thread = threading.Thread(target=leader)
            thread.start()
            deadline = time.time() + 5
            while not server.service._flights and time.time() < deadline:
                time.sleep(0.01)
            events = post_stream(server.url, "/v1/solve?stream=1", spec)
            thread.join()
        finally:
            session.solve = original

        status, body = plain["result"]
        assert status == 200
        steps = [e["node"] for e in events if e["event"] == "step"]
        assert steps == body["seeds"]
        assert events[-1]["event"] == "result"
        assert server.service.counters["solves"] == 1


class TestStatsAndHealth:
    def test_healthz_reports_config(self, server):
        status, body = get(server.url, "/v1/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["config"]["solver_threads"] == server.service.config.solver_threads

    def test_stats_track_cache_and_rates(self, server):
        spec = spec_dict(world_seed=19)
        for _ in range(3):
            status, _ = post(server.url, "/v1/solve", spec)
            assert status == 200
        status, stats = get(server.url, "/v1/stats")
        assert status == 200
        assert stats["counters"]["solve_requests"] == 3
        assert stats["cache"]["builds"] == 1
        assert stats["cache"]["bytes"] > 0
        # Sequential identical requests hit the session cache, not the
        # in-flight dedup; the hit rate reflects the two reuses.
        assert stats["cache"]["hits"] >= 2
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0
        assert stats["in_flight"] == 0


class TestHttpErrors:
    def test_bad_spec_is_400(self, server):
        status, body = post(server.url, "/v1/solve", {"bogus": 1})
        assert status == 400
        assert "invalid spec" in body["error"]["message"]

    def test_bad_json_is_400(self, server):
        status, body = post(server.url, "/v1/solve", None, raw=b"{nope")
        assert status == 400
        assert "not valid JSON" in body["error"]["message"]

    def test_unknown_path_is_404(self, server):
        status, body = post(server.url, "/v2/solve", {})
        assert status == 404
        assert "/v1/solve" in body["error"]["message"]

    def test_wrong_method_is_405(self, server):
        status, body = get(server.url, "/v1/solve")
        assert status == 405
        status, body = get(server.url, "/v1/healthz", method="POST")
        assert status == 405

    def test_delta_requires_both_fields(self, server):
        status, body = post(server.url, "/v1/delta", {"spec": spec_dict()})
        assert status == 400
        assert "delta" in body["error"]["message"]

    def test_unservable_spec_is_422(self, server):
        # Valid shape, impossible request: rrset ensembles cannot take
        # deltas — the service must answer, not traceback.
        spec = spec_dict()
        spec["ensemble"]["kind"] = "rrset"
        spec["ensemble"]["epsilon"] = 0.3
        spec["ensemble"]["delta"] = 0.1
        status, body = post(
            server.url, "/v1/delta", {"spec": spec, "delta": {"reweights": []}}
        )
        assert status == 422
        assert "repaired" in body["error"]["message"]

    def test_oversized_body_is_413(self):
        handle = start_in_thread(ServiceConfig(port=0, max_body_bytes=64))
        try:
            status, body = post(handle.url, "/v1/solve", {"pad": "x" * 256})
            assert status == 413
        finally:
            handle.stop()

    def test_errors_count_in_stats(self, server):
        post(server.url, "/v1/solve", {"bogus": 1})
        status, stats = get(server.url, "/v1/stats")
        assert stats["counters"]["errors"] >= 1


class TestBackpressure:
    def test_overload_sheds_with_429(self):
        handle = start_in_thread(ServiceConfig(port=0, max_pending=1))
        service = handle.service
        session = service.session
        original = session.solve
        release = threading.Event()

        def blocked(run):
            release.wait(10.0)
            return original(run)

        session.solve = blocked
        try:
            first = {}

            def leader():
                first["result"] = post(handle.url, "/v1/solve", spec_dict(world_seed=23))

            thread = threading.Thread(target=leader)
            thread.start()
            deadline = time.time() + 5
            while service._active < 1 and time.time() < deadline:
                time.sleep(0.01)
            status, body = post(handle.url, "/v1/solve", spec_dict(world_seed=29))
            assert status == 429
            assert "retry" in body["error"]["message"]
            assert service.counters["shed"] == 1
            release.set()
            thread.join()
            assert first["result"][0] == 200
        finally:
            release.set()
            session.solve = original
            handle.stop()

    def test_waiter_timeout_is_504_and_solve_survives(self):
        handle = start_in_thread(ServiceConfig(port=0, request_timeout=0.3))
        service = handle.service
        session = service.session
        original = session.solve

        def slow(run):
            time.sleep(1.0)
            return original(run)

        session.solve = slow
        try:
            spec = spec_dict(world_seed=31)
            status, body = post(handle.url, "/v1/solve", spec)
            assert status == 504
            assert service.counters["timeouts"] == 1
            # The shared solve kept running; once it lands, the worlds
            # are cached and a retry is fast enough to finish in time.
            deadline = time.time() + 10
            while service._flights and time.time() < deadline:
                time.sleep(0.05)
            session.solve = original
            status, body = post(handle.url, "/v1/solve", spec)
            assert status == 200
            assert body["seeds"]
        finally:
            session.solve = original
            handle.stop()


class TestDrain:
    def test_stop_clears_cache_and_refuses_connections(self):
        handle = start_in_thread(ServiceConfig(port=0))
        status, _ = post(handle.url, "/v1/solve", spec_dict(world_seed=37))
        assert status == 200
        assert handle.service.session.cache_info["entries"] == 1
        handle.stop()
        # Drained: cache released (shm segments unlinked with it)...
        assert handle.service.session.cache_info["entries"] == 0
        # ...and the listener is gone.
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(handle.url + "/v1/healthz", timeout=2.0)

    def test_drain_waits_for_in_flight_work(self):
        handle = start_in_thread(ServiceConfig(port=0))
        session = handle.service.session
        original = session.solve

        def slow(run):
            time.sleep(0.5)
            return original(run)

        session.solve = slow
        results = []

        def worker():
            results.append(post(handle.url, "/v1/solve", spec_dict(world_seed=41)))

        thread = threading.Thread(target=worker)
        thread.start()
        deadline = time.time() + 5
        while handle.service._active < 1 and time.time() < deadline:
            time.sleep(0.01)
        handle.stop()  # must wait for the in-flight solve, then drain
        thread.join()
        assert results and results[0][0] == 200
        assert results[0][1]["seeds"]


class TestServiceInProcess:
    """SolveService without sockets: constructor wiring."""

    def test_session_inherits_service_knobs(self):
        config = ServiceConfig(
            cache_bytes=parse_size("64m"), max_cached_ensembles=3
        )
        service = SolveService(config)
        assert service.session.cache_bytes == 64 << 20
        assert service.session.max_cached_ensembles == 3

    def test_caller_supplied_session_is_used(self):
        session = Session()
        service = SolveService(ServiceConfig(), session=session)
        assert service.session is session
