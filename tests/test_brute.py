"""Unit tests for the brute-force exact solvers (P1-P6 references)."""

import math

import pytest

from repro.errors import InfeasibleError, OptimizationError
from repro.core.brute import brute_force_budget, brute_force_cover
from repro.core.concave import identity, log1p
from repro.influence.exact import exact_utility
from repro.graph.digraph import DiGraph
from repro.graph.groups import GroupAssignment


class TestBruteForceBudget:
    def test_finds_true_optimum(self, small_two_group):
        graph, assignment = small_two_group
        best = brute_force_budget(graph, assignment, budget=2, deadline=2)
        # Exhaustive cross-check against every pair.
        from itertools import combinations

        for pair in combinations(graph.nodes(), 2):
            assert (
                exact_utility(graph, pair, 2)
                <= best.total_utility + 1e-9
            )

    def test_p1_label(self, small_two_group):
        graph, assignment = small_two_group
        best = brute_force_budget(graph, assignment, budget=1, deadline=1)
        assert "P1" in best.problem

    def test_hub_wins_budget_one(self, small_two_group):
        graph, assignment = small_two_group
        best = brute_force_budget(graph, assignment, budget=1, deadline=1)
        assert best.seeds == ("h",)

    def test_concave_objective_changes_solution_label(self, small_two_group):
        graph, assignment = small_two_group
        fair = brute_force_budget(
            graph, assignment, budget=2, deadline=2, concave=log1p
        )
        assert "P4" in fair.problem
        # The fair optimum must weakly improve the minority group over P1.
        unfair = brute_force_budget(graph, assignment, budget=2, deadline=2)
        small_i = fair.groups.index("small")
        assert fair.normalized[small_i] >= unfair.normalized[small_i] - 1e-9

    def test_p3_disparity_constraint(self, small_two_group):
        graph, assignment = small_two_group
        constrained = brute_force_budget(
            graph, assignment, budget=2, deadline=2, max_disparity=0.3
        )
        assert constrained.disparity <= 0.3 + 1e-9
        assert "P3" in constrained.problem

    def test_p3_infeasible(self, small_two_group):
        graph, assignment = small_two_group
        with pytest.raises(InfeasibleError):
            brute_force_budget(
                graph, assignment, budget=1, deadline=0, max_disparity=0.0
            )

    def test_candidate_restriction(self, small_two_group):
        graph, assignment = small_two_group
        best = brute_force_budget(
            graph, assignment, budget=1, deadline=1, candidates=["m1", "m2"]
        )
        assert best.seeds[0] in {"m1", "m2"}

    def test_validation(self, small_two_group):
        graph, assignment = small_two_group
        with pytest.raises(OptimizationError):
            brute_force_budget(graph, assignment, budget=0, deadline=1)


class TestBruteForceCover:
    def test_minimal_size_population_quota(self, small_two_group):
        graph, assignment = small_two_group
        # Deadline 0: only seeds count, so quota q needs ceil(q*8) seeds.
        solution = brute_force_cover(
            graph, assignment, quota=0.5, deadline=0, per_group=False
        )
        assert len(solution.seeds) == 4
        assert "P2" in solution.problem

    def test_per_group_quota_needs_minority_seed(self, small_two_group):
        graph, assignment = small_two_group
        solution = brute_force_cover(
            graph, assignment, quota=0.3, deadline=0, per_group=True
        )
        groups = {assignment.group_of(s) for s in solution.seeds}
        assert "small" in groups
        assert "P6" in solution.problem

    def test_per_group_needs_at_least_population_size(self, small_two_group):
        graph, assignment = small_two_group
        p2 = brute_force_cover(
            graph, assignment, quota=0.4, deadline=1, per_group=False
        )
        p6 = brute_force_cover(
            graph, assignment, quota=0.4, deadline=1, per_group=True
        )
        assert len(p6.seeds) >= len(p2.seeds)

    def test_p5_constraint(self, small_two_group):
        graph, assignment = small_two_group
        solution = brute_force_cover(
            graph,
            assignment,
            quota=0.25,
            deadline=0,
            per_group=False,
            max_disparity=0.5,
        )
        assert solution.disparity <= 0.5 + 1e-9
        assert "P5" in solution.problem

    def test_infeasible(self, small_two_group):
        graph, assignment = small_two_group
        # Deadline 0 with candidates restricted to one node cannot
        # cover half the population.
        with pytest.raises(InfeasibleError):
            brute_force_cover(
                graph,
                assignment,
                quota=0.5,
                deadline=0,
                per_group=False,
                candidates=["h"],
            )

    def test_invalid_quota(self, small_two_group):
        graph, assignment = small_two_group
        with pytest.raises(OptimizationError):
            brute_force_cover(
                graph, assignment, quota=0.0, deadline=1, per_group=False
            )
