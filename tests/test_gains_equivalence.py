"""Batched gain oracle + deadline sweep: bit-identical to scalar paths.

The batched oracle (``min_with_block`` / ``candidate_group_utilities_batch``
/ ``candidate_gains_batch``) and the deadline sweep
(``group_utilities_sweep``) exist purely for speed; their contract is
that the *numbers never change*:

- the blocked fold is an exact elementwise minimum, and the stacked
  ``(B, R, n) @ (n, k)`` matmul runs the same GEMM per block row as the
  scalar path runs per candidate, so batched utilities/gains are
  bit-identical under every backend, block size and discount;
- the sweep's per-(world, group) time histogram produces exact integer
  counts, so step-model sweeps are bit-identical too; discounted sweeps
  accumulate in float64 and agree within float32 rounding (documented);
- consequently the greedy engines produce *identical traces* — seeds,
  gains, evaluation counts, stop reasons — whether they run batched or
  scalar (``block_size=1``).
"""

import math

import numpy as np
import pytest

from repro.datasets.example import illustrative_graph
from repro.datasets.synthetic import default_synthetic
from repro.errors import EstimationError
from repro.influence.ensemble import WorldEnsemble
from repro.core.greedy import lazy_greedy, plain_greedy
from repro.core.objectives import ConcaveSumObjective, TotalInfluenceObjective

BACKENDS = ("dense", "sparse", "lazy")
DEADLINES = (2, 2.5, 20, math.inf)
DISCOUNTS = (None, 0.8)


@pytest.fixture(scope="module")
def ensembles():
    graph, assignment = default_synthetic(seed=0)
    return {
        backend: WorldEnsemble(
            graph, assignment, n_worlds=25, seed=7, backend=backend
        )
        for backend in BACKENDS
    }


def scalar_candidate_matrix(ensemble, state, deadline, discount, n_positions):
    return np.stack(
        [
            ensemble.candidate_group_utilities(state, position, deadline, discount)
            for position in range(n_positions)
        ]
    )


@pytest.mark.parametrize("backend", BACKENDS)
class TestBatchedUtilities:
    @pytest.mark.parametrize("discount", DISCOUNTS, ids=["step", "gamma0.8"])
    def test_blocked_equals_scalar_bitwise(self, ensembles, backend, discount):
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:3])
        # Full candidate width on dense; a prefix on the backends whose
        # *scalar* reference loops per world in Python (the batch side
        # is cheap everywhere — it's the reference that is slow).
        width = ensemble.n_candidates if backend == "dense" else 130
        for deadline in DEADLINES:
            scalar = scalar_candidate_matrix(
                ensemble, state, deadline, discount, width
            )
            for block_size in (17, 64):  # ragged final block included
                batch = np.vstack(
                    [
                        ensemble.candidate_group_utilities_batch(
                            state,
                            range(start, min(start + block_size, width)),
                            deadline,
                            discount,
                        )
                        for start in range(0, width, block_size)
                    ]
                )
                np.testing.assert_array_equal(
                    batch, scalar, err_msg=f"{backend} tau={deadline} B={block_size}"
                )

    def test_scattered_positions(self, ensembles, backend):
        # Non-contiguous blocks are what plain greedy issues after the
        # first pick; the dense backend takes a different (per-row)
        # path for them than for contiguous ranges.
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:1])
        positions = np.array([0, 7, ensemble.n_candidates - 1, 13, 250])
        scalar = np.stack(
            [
                ensemble.candidate_group_utilities(state, int(p), 20)
                for p in positions
            ]
        )
        batch = ensemble.candidate_group_utilities_batch(state, positions, 20)
        np.testing.assert_array_equal(batch, scalar)

    def test_gains_equal_scalar_bitwise(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.empty_state()
        objective = ConcaveSumObjective()
        base = objective.value(ensemble.group_utilities(state, 20))
        width = ensemble.n_candidates if backend == "dense" else 130
        scalar = np.array(
            [
                objective.value(ensemble.candidate_group_utilities(state, p, 20))
                - base
                for p in range(width)
            ]
        )
        batch = np.concatenate(
            [
                ensemble.candidate_gains_batch(
                    state,
                    range(start, min(start + 64, width)),
                    20,
                    objective,
                    base_value=base,
                )
                for start in range(0, width, 64)
            ]
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_gains_computes_base_value_when_omitted(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:2])
        objective = TotalInfluenceObjective()
        explicit = ensemble.candidate_gains_batch(
            state,
            [5, 6],
            20,
            objective,
            base_value=objective.value(ensemble.group_utilities(state, 20)),
        )
        implicit = ensemble.candidate_gains_batch(state, [5, 6], 20, objective)
        np.testing.assert_array_equal(explicit, implicit)

    def test_state_not_mutated(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:2])
        before = state.best_time.copy()
        ensemble.candidate_group_utilities_batch(state, range(32), 20)
        np.testing.assert_array_equal(state.best_time, before)

    def test_empty_and_invalid_blocks(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.empty_state()
        empty = ensemble.candidate_group_utilities_batch(state, [], 20)
        assert empty.shape == (0, len(ensemble.group_names))
        with pytest.raises(EstimationError, match="out of range"):
            ensemble.candidate_group_utilities_batch(
                state, [0, ensemble.n_candidates], 20
            )
        with pytest.raises(EstimationError, match="out of range"):
            ensemble.candidate_group_utilities_batch(state, [-1], 20)
        with pytest.raises(EstimationError, match="discount"):
            ensemble.candidate_group_utilities_batch(state, [0], 20, discount=1.5)


@pytest.mark.parametrize("backend", BACKENDS)
class TestDeadlineSweep:
    def test_step_sweep_bitwise(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:4])
        deadlines = [0, 1, 2, 2.5, 5, 10, 20, math.inf]
        sweep = ensemble.group_utilities_sweep(state, deadlines)
        scalar = np.stack(
            [ensemble.group_utilities(state, deadline) for deadline in deadlines]
        )
        np.testing.assert_array_equal(sweep, scalar)

    def test_empty_state_and_empty_deadlines(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.empty_state()
        sweep = ensemble.group_utilities_sweep(state, [2, 20])
        np.testing.assert_array_equal(sweep, np.zeros((2, len(ensemble.group_names))))
        assert ensemble.group_utilities_sweep(state, []).shape == (
            0,
            len(ensemble.group_names),
        )

    def test_discounted_sweep_matches_scalar(self, ensembles, backend):
        # Discounted sweeps accumulate the histogram in float64 — more
        # accurate than the scalar float32 GEMM, hence "allclose", not
        # "array_equal" (see group_utilities_sweep docstring).
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:4])
        deadlines = [1, 5, 20, math.inf]
        for discount in (0.0, 0.5, 1.0):
            sweep = ensemble.group_utilities_sweep(state, deadlines, discount)
            scalar = np.stack(
                [
                    ensemble.group_utilities(state, deadline, discount)
                    for deadline in deadlines
                ]
            )
            np.testing.assert_allclose(sweep, scalar, rtol=1e-5, atol=1e-5)

    def test_discount_one_equals_step_sweep(self, ensembles, backend):
        # gamma=1 recovers the step model mathematically; the step path
        # mirrors the scalar float32 pipeline while gamma=1 accumulates
        # in float64, so agreement is to float32 rounding.
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:4])
        step = ensemble.group_utilities_sweep(state, [2, 20])
        gamma_one = ensemble.group_utilities_sweep(state, [2, 20], discount=1.0)
        np.testing.assert_allclose(gamma_one, step, rtol=1e-6)

    def test_sweep_rejects_bad_inputs(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.empty_state()
        with pytest.raises(EstimationError, match="non-negative"):
            ensemble.group_utilities_sweep(state, [2, -1])
        with pytest.raises(EstimationError, match="discount"):
            ensemble.group_utilities_sweep(state, [2], discount=-0.1)


def assert_traces_identical(a, b):
    assert a.stopped_reason == b.stopped_reason
    assert len(a.steps) == len(b.steps)
    for step_a, step_b in zip(a.steps, b.steps):
        assert step_a.node == step_b.node
        assert step_a.position == step_b.position
        assert step_a.gain == step_b.gain
        assert step_a.objective_value == step_b.objective_value
        assert step_a.evaluations == step_b.evaluations
        np.testing.assert_array_equal(step_a.group_utilities, step_b.group_utilities)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("discount", DISCOUNTS, ids=["step", "gamma0.8"])
def test_batched_celf_trace_equals_scalar(ensembles, backend, discount):
    """block_size=1 runs the pre-oracle scalar path; traces must match."""
    ensemble = ensembles[backend]
    objective = TotalInfluenceObjective()
    batched = lazy_greedy(
        ensemble, objective, deadline=20, max_seeds=5, discount=discount,
        block_size=64,
    )
    scalar = lazy_greedy(
        ensemble, objective, deadline=20, max_seeds=5, discount=discount,
        block_size=1,
    )
    assert_traces_identical(batched, scalar)


@pytest.mark.parametrize("backend", BACKENDS)
def test_batched_plain_greedy_trace_equals_scalar(ensembles, backend):
    ensemble = ensembles[backend]
    objective = ConcaveSumObjective()
    batched = plain_greedy(
        ensemble, objective, deadline=20, max_seeds=4, block_size=32
    )
    scalar = plain_greedy(
        ensemble, objective, deadline=20, max_seeds=4, block_size=1
    )
    assert_traces_identical(batched, scalar)


def test_batched_celf_matches_plain_greedy_oracle(ensembles):
    """Seed-for-seed agreement of batched CELF with the plain oracle."""
    ensemble = ensembles["dense"]
    for objective in (TotalInfluenceObjective(), ConcaveSumObjective()):
        celf = lazy_greedy(ensemble, objective, deadline=20, max_seeds=5)
        plain = plain_greedy(ensemble, objective, deadline=20, max_seeds=5)
        assert celf.seeds == plain.seeds
        np.testing.assert_array_equal(
            celf.final_group_utilities, plain.final_group_utilities
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_state_fast_path_bitwise_across_deadlines(ensembles, backend):
    """The first greedy round is served from the cached histogram table
    (dense/sparse; lazy falls back to the blocked fold) — exact at every
    representable deadline."""
    ensemble = ensembles[backend]
    state = ensemble.empty_state()
    positions = np.array([0, 3, 250, ensemble.n_candidates - 1])
    for deadline in (0, 1, 2, 3, 7, 20, 100, 254, math.inf):
        scalar = np.stack(
            [
                ensemble.candidate_group_utilities(state, int(p), deadline)
                for p in positions
            ]
        )
        batch = ensemble.candidate_group_utilities_batch(state, positions, deadline)
        np.testing.assert_array_equal(
            batch, scalar, err_msg=f"{backend} tau={deadline}"
        )


def test_empty_state_table_presence_by_backend(ensembles):
    for backend, expect in (("dense", True), ("sparse", True), ("lazy", False)):
        table = ensembles[backend]._empty_state_table()
        assert (table is not None) is expect, backend
    # dense and sparse build identical tables from their stores
    np.testing.assert_array_equal(
        ensembles["dense"]._empty_state_table(),
        ensembles["sparse"]._empty_state_table(),
    )


def test_min_with_block_matches_min_with_per_backend():
    """The backend primitive itself, on the small bundled example."""
    graph, assignment = illustrative_graph()
    for backend in BACKENDS:
        ensemble = WorldEnsemble(
            graph, assignment, n_worlds=40, seed=3, backend=backend
        )
        state = ensemble.state_for(ensemble.candidate_labels[:2])
        positions = np.arange(ensemble.n_candidates)
        out = np.empty(
            (positions.size, ensemble.n_worlds, ensemble.n), dtype=np.uint8
        )
        ensemble.backend.min_with_block(state.best_time, positions, out)
        for i, position in enumerate(positions):
            np.testing.assert_array_equal(
                out[i],
                ensemble.backend.min_with(state.best_time, int(position)),
                err_msg=f"{backend} position {position}",
            )


def test_standard_errors_step_unchanged_and_discount_supported(ensembles):
    ensemble = ensembles["dense"]
    state = ensemble.state_for(ensemble.candidate_labels[:3])
    # Pre-dedup formula, reproduced verbatim.
    cutoff = 20
    active = (state.best_time <= cutoff).astype(np.float32)
    per_world = active @ ensemble._masks_f
    legacy = per_world.std(axis=0, ddof=1).astype(np.float64) / math.sqrt(
        ensemble.n_worlds
    )
    np.testing.assert_array_equal(ensemble.standard_errors(state, 20), legacy)
    # Discounted errors: well-defined, non-negative, and no larger than
    # the step-model errors per world (weights are <= the step weights).
    discounted = ensemble.standard_errors(state, 20, discount=0.5)
    assert (discounted >= 0).all()
    assert discounted.shape == legacy.shape
    with pytest.raises(EstimationError, match="discount"):
        ensemble.standard_errors(state, 20, discount=2.0)
