"""Batched gain oracle + deadline sweep: bit-identical to scalar paths.

The batched oracle (``min_with_block`` / ``candidate_group_utilities_batch``
/ ``candidate_gains_batch``) and the deadline sweep
(``group_utilities_sweep``) exist purely for speed; their contract is
that the *numbers never change*:

- the blocked fold is an exact elementwise minimum, and the stacked
  ``(B, R, n) @ (n, k)`` matmul runs the same GEMM per block row as the
  scalar path runs per candidate, so batched utilities/gains are
  bit-identical under every backend, block size and discount;
- the sweep's per-(world, group) time histogram produces exact integer
  counts, so step-model sweeps are bit-identical too; discounted sweeps
  accumulate in float64 and agree within float32 rounding (documented);
- consequently the greedy engines produce *identical traces* — seeds,
  gains, evaluation counts, stop reasons — whether they run batched or
  scalar (``block_size=1``);
- the world-sharded thread pool (``workers``) extends the same
  contract: sharded folds/histograms are exact and the BLAS
  contraction is only ever split along its bit-safe stack axis, so
  every utility, sweep column, state and trace is bit-identical at
  every worker count — and concurrent queries on one shared ensemble
  (per-thread scratch) don't corrupt each other.
"""

import math
import threading

import numpy as np
import pytest

from repro.datasets.example import illustrative_graph
from repro.datasets.synthetic import default_synthetic
from repro.errors import EstimationError
from repro.influence.ensemble import WorldEnsemble
from repro.core.greedy import lazy_greedy, plain_greedy
from repro.core.objectives import ConcaveSumObjective, TotalInfluenceObjective

BACKENDS = ("dense", "sparse", "lazy")
DEADLINES = (2, 2.5, 20, math.inf)
DISCOUNTS = (None, 0.8)
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def ensembles():
    graph, assignment = default_synthetic(seed=0)
    return {
        backend: WorldEnsemble(
            graph, assignment, n_worlds=25, seed=7, backend=backend
        )
        for backend in BACKENDS
    }


def scalar_candidate_matrix(ensemble, state, deadline, discount, n_positions):
    return np.stack(
        [
            ensemble.candidate_group_utilities(state, position, deadline, discount)
            for position in range(n_positions)
        ]
    )


@pytest.mark.parametrize("backend", BACKENDS)
class TestBatchedUtilities:
    @pytest.mark.parametrize("discount", DISCOUNTS, ids=["step", "gamma0.8"])
    def test_blocked_equals_scalar_bitwise(self, ensembles, backend, discount):
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:3])
        # Full candidate width on dense; a prefix on the backends whose
        # *scalar* reference loops per world in Python (the batch side
        # is cheap everywhere — it's the reference that is slow).
        width = ensemble.n_candidates if backend == "dense" else 130
        for deadline in DEADLINES:
            scalar = scalar_candidate_matrix(
                ensemble, state, deadline, discount, width
            )
            for block_size in (17, 64):  # ragged final block included
                batch = np.vstack(
                    [
                        ensemble.candidate_group_utilities_batch(
                            state,
                            range(start, min(start + block_size, width)),
                            deadline,
                            discount,
                        )
                        for start in range(0, width, block_size)
                    ]
                )
                np.testing.assert_array_equal(
                    batch, scalar, err_msg=f"{backend} tau={deadline} B={block_size}"
                )

    def test_scattered_positions(self, ensembles, backend):
        # Non-contiguous blocks are what plain greedy issues after the
        # first pick; the dense backend takes a different (per-row)
        # path for them than for contiguous ranges.
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:1])
        positions = np.array([0, 7, ensemble.n_candidates - 1, 13, 250])
        scalar = np.stack(
            [
                ensemble.candidate_group_utilities(state, int(p), 20)
                for p in positions
            ]
        )
        batch = ensemble.candidate_group_utilities_batch(state, positions, 20)
        np.testing.assert_array_equal(batch, scalar)

    def test_gains_equal_scalar_bitwise(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.empty_state()
        objective = ConcaveSumObjective()
        base = objective.value(ensemble.group_utilities(state, 20))
        width = ensemble.n_candidates if backend == "dense" else 130
        scalar = np.array(
            [
                objective.value(ensemble.candidate_group_utilities(state, p, 20))
                - base
                for p in range(width)
            ]
        )
        batch = np.concatenate(
            [
                ensemble.candidate_gains_batch(
                    state,
                    range(start, min(start + 64, width)),
                    20,
                    objective,
                    base_value=base,
                )
                for start in range(0, width, 64)
            ]
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_gains_computes_base_value_when_omitted(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:2])
        objective = TotalInfluenceObjective()
        explicit = ensemble.candidate_gains_batch(
            state,
            [5, 6],
            20,
            objective,
            base_value=objective.value(ensemble.group_utilities(state, 20)),
        )
        implicit = ensemble.candidate_gains_batch(state, [5, 6], 20, objective)
        np.testing.assert_array_equal(explicit, implicit)

    def test_state_not_mutated(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:2])
        before = state.best_time.copy()
        ensemble.candidate_group_utilities_batch(state, range(32), 20)
        np.testing.assert_array_equal(state.best_time, before)

    def test_empty_and_invalid_blocks(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.empty_state()
        empty = ensemble.candidate_group_utilities_batch(state, [], 20)
        assert empty.shape == (0, len(ensemble.group_names))
        with pytest.raises(EstimationError, match="out of range"):
            ensemble.candidate_group_utilities_batch(
                state, [0, ensemble.n_candidates], 20
            )
        with pytest.raises(EstimationError, match="out of range"):
            ensemble.candidate_group_utilities_batch(state, [-1], 20)
        with pytest.raises(EstimationError, match="discount"):
            ensemble.candidate_group_utilities_batch(state, [0], 20, discount=1.5)


@pytest.mark.parametrize("backend", BACKENDS)
class TestDeadlineSweep:
    def test_step_sweep_bitwise(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:4])
        deadlines = [0, 1, 2, 2.5, 5, 10, 20, math.inf]
        sweep = ensemble.group_utilities_sweep(state, deadlines)
        scalar = np.stack(
            [ensemble.group_utilities(state, deadline) for deadline in deadlines]
        )
        np.testing.assert_array_equal(sweep, scalar)

    def test_empty_state_and_empty_deadlines(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.empty_state()
        sweep = ensemble.group_utilities_sweep(state, [2, 20])
        np.testing.assert_array_equal(sweep, np.zeros((2, len(ensemble.group_names))))
        assert ensemble.group_utilities_sweep(state, []).shape == (
            0,
            len(ensemble.group_names),
        )

    def test_discounted_sweep_matches_scalar(self, ensembles, backend):
        # Discounted sweeps accumulate the histogram in float64 — more
        # accurate than the scalar float32 GEMM, hence "allclose", not
        # "array_equal" (see group_utilities_sweep docstring).
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:4])
        deadlines = [1, 5, 20, math.inf]
        for discount in (0.0, 0.5, 1.0):
            sweep = ensemble.group_utilities_sweep(state, deadlines, discount)
            scalar = np.stack(
                [
                    ensemble.group_utilities(state, deadline, discount)
                    for deadline in deadlines
                ]
            )
            np.testing.assert_allclose(sweep, scalar, rtol=1e-5, atol=1e-5)

    def test_discount_one_equals_step_sweep(self, ensembles, backend):
        # gamma=1 recovers the step model mathematically; the step path
        # mirrors the scalar float32 pipeline while gamma=1 accumulates
        # in float64, so agreement is to float32 rounding.
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:4])
        step = ensemble.group_utilities_sweep(state, [2, 20])
        gamma_one = ensemble.group_utilities_sweep(state, [2, 20], discount=1.0)
        np.testing.assert_allclose(gamma_one, step, rtol=1e-6)

    def test_sweep_rejects_bad_inputs(self, ensembles, backend):
        ensemble = ensembles[backend]
        state = ensemble.empty_state()
        with pytest.raises(EstimationError, match="non-negative"):
            ensemble.group_utilities_sweep(state, [2, -1])
        with pytest.raises(EstimationError, match="discount"):
            ensemble.group_utilities_sweep(state, [2], discount=-0.1)


def assert_traces_identical(a, b):
    assert a.stopped_reason == b.stopped_reason
    assert len(a.steps) == len(b.steps)
    for step_a, step_b in zip(a.steps, b.steps):
        assert step_a.node == step_b.node
        assert step_a.position == step_b.position
        assert step_a.gain == step_b.gain
        assert step_a.objective_value == step_b.objective_value
        assert step_a.evaluations == step_b.evaluations
        np.testing.assert_array_equal(step_a.group_utilities, step_b.group_utilities)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("discount", DISCOUNTS, ids=["step", "gamma0.8"])
def test_batched_celf_trace_equals_scalar(ensembles, backend, discount):
    """block_size=1 runs the pre-oracle scalar path; traces must match."""
    ensemble = ensembles[backend]
    objective = TotalInfluenceObjective()
    batched = lazy_greedy(
        ensemble, objective, deadline=20, max_seeds=5, discount=discount,
        block_size=64,
    )
    scalar = lazy_greedy(
        ensemble, objective, deadline=20, max_seeds=5, discount=discount,
        block_size=1,
    )
    assert_traces_identical(batched, scalar)


@pytest.mark.parametrize("backend", BACKENDS)
def test_batched_plain_greedy_trace_equals_scalar(ensembles, backend):
    ensemble = ensembles[backend]
    objective = ConcaveSumObjective()
    batched = plain_greedy(
        ensemble, objective, deadline=20, max_seeds=4, block_size=32
    )
    scalar = plain_greedy(
        ensemble, objective, deadline=20, max_seeds=4, block_size=1
    )
    assert_traces_identical(batched, scalar)


def test_batched_celf_matches_plain_greedy_oracle(ensembles):
    """Seed-for-seed agreement of batched CELF with the plain oracle."""
    ensemble = ensembles["dense"]
    for objective in (TotalInfluenceObjective(), ConcaveSumObjective()):
        celf = lazy_greedy(ensemble, objective, deadline=20, max_seeds=5)
        plain = plain_greedy(ensemble, objective, deadline=20, max_seeds=5)
        assert celf.seeds == plain.seeds
        np.testing.assert_array_equal(
            celf.final_group_utilities, plain.final_group_utilities
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_state_fast_path_bitwise_across_deadlines(ensembles, backend):
    """The first greedy round is served from the cached histogram table
    (dense/sparse; lazy falls back to the blocked fold) — exact at every
    representable deadline."""
    ensemble = ensembles[backend]
    state = ensemble.empty_state()
    positions = np.array([0, 3, 250, ensemble.n_candidates - 1])
    for deadline in (0, 1, 2, 3, 7, 20, 100, 254, math.inf):
        scalar = np.stack(
            [
                ensemble.candidate_group_utilities(state, int(p), deadline)
                for p in positions
            ]
        )
        batch = ensemble.candidate_group_utilities_batch(state, positions, deadline)
        np.testing.assert_array_equal(
            batch, scalar, err_msg=f"{backend} tau={deadline}"
        )


def test_empty_state_table_presence_by_backend(ensembles):
    for backend, expect in (("dense", True), ("sparse", True), ("lazy", False)):
        table = ensembles[backend]._empty_state_table()
        assert (table is not None) is expect, backend
    # dense and sparse build identical tables from their stores
    np.testing.assert_array_equal(
        ensembles["dense"]._empty_state_table(),
        ensembles["sparse"]._empty_state_table(),
    )


def test_min_with_block_matches_min_with_per_backend():
    """The backend primitive itself, on the small bundled example."""
    graph, assignment = illustrative_graph()
    for backend in BACKENDS:
        ensemble = WorldEnsemble(
            graph, assignment, n_worlds=40, seed=3, backend=backend
        )
        state = ensemble.state_for(ensemble.candidate_labels[:2])
        positions = np.arange(ensemble.n_candidates)
        out = np.empty(
            (positions.size, ensemble.n_worlds, ensemble.n), dtype=np.uint8
        )
        ensemble.backend.min_with_block(state.best_time, positions, out)
        for i, position in enumerate(positions):
            np.testing.assert_array_equal(
                out[i],
                ensemble.backend.min_with(state.best_time, int(position)),
                err_msg=f"{backend} position {position}",
            )


@pytest.fixture
def tiny_shard_floor(monkeypatch):
    """Force the pool to engage even on this suite's small ensembles.

    Production gating (``effective_workers``) keeps tiny workloads
    inline; the equivalence tests are exactly about exercising the
    *sharded* code paths, so they drop the per-worker work floor to 1.
    """
    from repro.influence import parallel

    monkeypatch.setattr(parallel, "MIN_SHARD_ITEMS", 1)


@pytest.fixture
def pinned_workers(ensembles):
    """Restore every shared ensemble's worker setting after the test."""
    previous = {}
    for backend, ensemble in ensembles.items():
        setting = ensemble.set_workers(None)
        ensemble.set_workers(setting)  # peek-and-put-back
        previous[backend] = setting
    yield
    for backend, setting in previous.items():
        ensembles[backend].set_workers(setting)


@pytest.mark.parametrize("backend", BACKENDS)
class TestThreadedEquivalence:
    """workers>1 must be bit-identical to workers=1 on every backend."""

    def test_batch_utilities_bitwise_across_workers(
        self, ensembles, pinned_workers, tiny_shard_floor, backend
    ):
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:3])
        positions = range(0, 130)
        for discount in DISCOUNTS:
            reference = None
            for workers in WORKER_COUNTS:
                ensemble.set_workers(workers)
                batch = ensemble.candidate_group_utilities_batch(
                    state, positions, 5, discount
                )
                if reference is None:
                    reference = batch
                else:
                    np.testing.assert_array_equal(
                        batch,
                        reference,
                        err_msg=f"{backend} workers={workers} discount={discount}",
                    )

    def test_sweep_bitwise_across_workers(self, ensembles, pinned_workers, tiny_shard_floor, backend):
        ensemble = ensembles[backend]
        deadlines = [0, 1, 2, 2.5, 5, 20, math.inf]
        reference = None
        for workers in WORKER_COUNTS:
            ensemble.set_workers(workers)
            # Fresh state per worker count: the sweep histogram is
            # cached on the state, and a cached histogram would defeat
            # the cross-worker comparison.
            state = ensemble.state_for(ensemble.candidate_labels[:4])
            sweep = ensemble.group_utilities_sweep(state, deadlines)
            if reference is None:
                reference = sweep
            else:
                np.testing.assert_array_equal(
                    sweep, reference, err_msg=f"{backend} workers={workers}"
                )

    def test_state_for_slab_matches_sequential_adds(
        self, ensembles, pinned_workers, tiny_shard_floor, backend
    ):
        # The slab reduce_rows build (at any worker count) must equal
        # the one-add_seed-per-seed chain bit for bit.
        ensemble = ensembles[backend]
        seeds = ensemble.candidate_labels[:6]
        sequential = ensemble.empty_state()
        for node in seeds:
            ensemble.add_seed(sequential, ensemble.position(node))
        for workers in WORKER_COUNTS:
            ensemble.set_workers(workers)
            slab = ensemble.state_for(seeds)
            np.testing.assert_array_equal(
                slab.best_time,
                sequential.best_time,
                err_msg=f"{backend} workers={workers}",
            )
            assert slab.seed_positions == sequential.seed_positions

    def test_incremental_histogram_matches_full_rebuild(
        self, ensembles, pinned_workers, tiny_shard_floor, backend
    ):
        # sweep -> add_seed -> sweep exercises the incrementally
        # maintained state histogram; it must agree bit-for-bit with a
        # cold rebuild *and* with the scalar per-deadline path.
        ensemble = ensembles[backend]
        deadlines = [0, 1, 2, 5, 20, math.inf]
        for workers in (1, 2):
            ensemble.set_workers(workers)
            state = ensemble.state_for(ensemble.candidate_labels[:2])
            ensemble.group_utilities_sweep(state, deadlines)  # builds the hist
            assert state.time_hist is not None
            extra = ensemble.position(ensemble.candidate_labels[10])
            ensemble.add_seed(state, extra)
            incremental = ensemble.group_utilities_sweep(state, deadlines)
            cold = ensemble.state_for(
                ensemble.candidate_labels[:2] + [ensemble.candidate_labels[10]]
            )
            rebuilt = ensemble.group_utilities_sweep(cold, deadlines)
            np.testing.assert_array_equal(incremental, rebuilt)
            np.testing.assert_array_equal(state.time_hist, cold.time_hist)
            scalar = np.stack(
                [ensemble.group_utilities(state, deadline) for deadline in deadlines]
            )
            np.testing.assert_array_equal(incremental, scalar)

    def test_copied_state_histogram_is_independent(
        self, ensembles, pinned_workers, tiny_shard_floor, backend
    ):
        ensemble = ensembles[backend]
        state = ensemble.state_for(ensemble.candidate_labels[:2])
        ensemble.group_utilities_sweep(state, [5, 20])
        clone = state.copy()
        ensemble.add_seed(clone, ensemble.position(ensemble.candidate_labels[9]))
        np.testing.assert_array_equal(
            ensemble.group_utilities_sweep(state, [5, 20]),
            np.stack(
                [ensemble.group_utilities(state, deadline) for deadline in (5, 20)]
            ),
        )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("discount", DISCOUNTS, ids=["step", "gamma0.8"])
def test_threaded_celf_trace_equals_serial(
    ensembles, pinned_workers, tiny_shard_floor, backend, discount
):
    """The workers= solver knob: traces bit-identical at 1, 2, 4 workers."""
    ensemble = ensembles[backend]
    objective = TotalInfluenceObjective()
    serial = lazy_greedy(
        ensemble, objective, deadline=20, max_seeds=5, discount=discount, workers=1
    )
    for workers in WORKER_COUNTS[1:]:
        threaded = lazy_greedy(
            ensemble,
            objective,
            deadline=20,
            max_seeds=5,
            discount=discount,
            workers=workers,
        )
        assert_traces_identical(threaded, serial)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("discount", DISCOUNTS, ids=["step", "gamma0.8"])
def test_threaded_plain_greedy_trace_equals_serial(
    ensembles, pinned_workers, tiny_shard_floor, backend, discount
):
    ensemble = ensembles[backend]
    objective = ConcaveSumObjective()
    serial = plain_greedy(
        ensemble, objective, deadline=20, max_seeds=3, discount=discount, workers=1
    )
    for workers in WORKER_COUNTS[1:]:
        threaded = plain_greedy(
            ensemble,
            objective,
            deadline=20,
            max_seeds=3,
            discount=discount,
            workers=workers,
        )
        assert_traces_identical(threaded, serial)


def test_solver_workers_knob_restores_setting(ensembles, pinned_workers):
    ensemble = ensembles["dense"]
    ensemble.set_workers(3)
    lazy_greedy(ensemble, TotalInfluenceObjective(), 20, 2, workers=2)
    assert ensemble.workers == min(3, ensemble.n_worlds)


def test_concurrent_solver_pins_do_not_leak(ensembles, pinned_workers):
    """Two simultaneous solves with different workers= pins on one
    shared ensemble: pins are thread-local, so neither solve can leave
    its worker count installed on the ensemble afterwards."""
    ensemble = ensembles["dense"]
    ensemble.set_workers(1)
    objective = TotalInfluenceObjective()
    expected = lazy_greedy(ensemble, objective, 20, 3).seeds
    errors = []
    barrier = threading.Barrier(2)

    def solve(workers):
        try:
            barrier.wait(timeout=30)
            for _ in range(3):
                trace = lazy_greedy(ensemble, objective, 20, 3, workers=workers)
                assert trace.seeds == expected
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=solve, args=(w,)) for w in (2, 4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "concurrent solve deadlocked"
    assert not errors, errors[0]
    assert ensemble.workers == 1  # neither pin leaked


def test_lazy_backend_declines_sharding_oversized_blocks():
    """A lazy block larger than the row cache runs serially (sharded
    workers would each rebuild the evicted rows) — and still produces
    bit-identical results."""
    graph, assignment = illustrative_graph()
    ensemble = WorldEnsemble(
        graph,
        assignment,
        n_worlds=12,
        seed=3,
        backend="lazy",
        backend_options={"cache_size": 2},
        workers=4,
    )
    assert not ensemble.backend.can_shard_block([0, 1, 2])
    assert ensemble.backend.can_shard_block([0, 1])
    state = ensemble.empty_state()
    positions = list(range(min(6, ensemble.n_candidates)))
    batch = ensemble.candidate_group_utilities_batch(state, positions, 5)
    scalar = np.stack(
        [
            ensemble.candidate_group_utilities(state, position, 5)
            for position in positions
        ]
    )
    np.testing.assert_array_equal(batch, scalar)


@pytest.mark.parametrize("workers", (1, 2))
def test_concurrent_batched_queries_on_shared_ensemble(
    ensembles, pinned_workers, tiny_shard_floor, workers
):
    """Stress the per-thread scratch: many caller threads, one ensemble.

    Before the per-worker scratch fix, two in-flight batched queries on
    one ensemble silently corrupted each other's buffers (the old
    contract was "one in-flight batched query per ensemble").  Here
    several caller threads hammer the same ensemble — at ``workers=2``
    their world shards also interleave on the shared executor — and
    every thread must reproduce the serially computed answers exactly.
    """
    ensemble = ensembles["dense"]
    ensemble.set_workers(workers)
    objective = TotalInfluenceObjective()
    states = [
        ensemble.empty_state(),
        ensemble.state_for(ensemble.candidate_labels[:2]),
        ensemble.state_for(ensemble.candidate_labels[5:9]),
    ]
    queries = [
        (state, list(range(start, start + 40)), deadline, discount)
        for state in states
        for start, deadline, discount in ((0, 5, None), (40, 20, 0.8))
    ]
    expected = [
        ensemble.candidate_group_utilities_batch(state, positions, deadline, discount)
        for state, positions, deadline, discount in queries
    ]
    errors = []
    barrier = threading.Barrier(4)

    def hammer(order):
        try:
            barrier.wait(timeout=30)
            for _ in range(5):
                for i in order:
                    state, positions, deadline, discount = queries[i]
                    got = ensemble.candidate_group_utilities_batch(
                        state, positions, deadline, discount
                    )
                    np.testing.assert_array_equal(got, expected[i])
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(order,))
        for order in (
            list(range(len(queries))),
            list(reversed(range(len(queries)))),
            [0, 2, 4, 1, 3, 5],
            [5, 3, 1, 4, 2, 0],
        )
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        # A deadlocked query would leave the thread alive and errors
        # empty — that must fail loudly, not hang at interpreter exit.
        assert not thread.is_alive(), "concurrent query deadlocked"
    assert not errors, errors[0]


def test_standard_errors_step_unchanged_and_discount_supported(ensembles):
    ensemble = ensembles["dense"]
    state = ensemble.state_for(ensemble.candidate_labels[:3])
    # Pre-dedup formula, reproduced verbatim.
    cutoff = 20
    active = (state.best_time <= cutoff).astype(np.float32)
    per_world = active @ ensemble._masks_f
    legacy = per_world.std(axis=0, ddof=1).astype(np.float64) / math.sqrt(
        ensemble.n_worlds
    )
    np.testing.assert_array_equal(ensemble.standard_errors(state, 20), legacy)
    # Discounted errors: well-defined, non-negative, and no larger than
    # the step-model errors per world (weights are <= the step weights).
    discounted = ensemble.standard_errors(state, 20, discount=0.5)
    assert (discounted >= 0).all()
    assert discounted.shape == legacy.shape
    with pytest.raises(EstimationError, match="discount"):
        ensemble.standard_errors(state, 20, discount=2.0)
