"""Benchmarks: Figure 6 — synthetic cover-problem panels.

fig6a: greedy iteration trajectories; fig6b: group influence per quota;
fig6c: seed-set sizes per quota.
"""

from conftest import run_and_check


def test_fig6a_greedy_iterations(benchmark):
    run_and_check(benchmark, "fig6a")


def test_fig6b_quota_influence(benchmark):
    run_and_check(benchmark, "fig6b")


def test_fig6c_quota_sizes(benchmark):
    run_and_check(benchmark, "fig6c")
