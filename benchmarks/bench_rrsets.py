"""Benchmarks for the RR-set estimator vs. the world ensemble.

The ``rrset`` kind exists to scale past the distance-tensor backends,
so this suite measures the trade it makes on the default synthetic
benchmark graph: build time (adaptive RR sampling vs. world sampling +
distance store), unfair-budget solve time on each estimator, and the
relative utility error of the RR estimate against the ensemble's
estimate of the same seed set.  The measured numbers are committed to
``BENCH_rrsets.json`` next to this file; CI runs the suite with
``--benchmark-disable`` as a smoke test.
"""

import math
from pathlib import Path

import pytest

from conftest import best_of, record_bench

from repro.core.budget import solve_tcim_budget
from repro.datasets.synthetic import DEFAULT_DEADLINE, default_synthetic
from repro.influence.ensemble import WorldEnsemble
from repro.influence.rrsets import RRSetEstimator

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_rrsets.json"
N_WORLDS = 100
BUDGET = 10


@pytest.fixture(scope="module")
def dataset():
    return default_synthetic(seed=0)


@pytest.fixture(scope="module")
def ensemble(dataset):
    graph, assignment = dataset
    return WorldEnsemble(graph, assignment, n_worlds=N_WORLDS, seed=1)


@pytest.fixture(scope="module")
def rr_estimator(dataset):
    graph, assignment = dataset
    estimator = RRSetEstimator(graph, assignment, seed=1)
    estimator.diagnostics(DEFAULT_DEADLINE)  # pre-sample the horizon
    return estimator


def test_rrset_build(benchmark, dataset):
    graph, assignment = dataset

    def build():
        estimator = RRSetEstimator(graph, assignment, seed=2)
        estimator.diagnostics(DEFAULT_DEADLINE)
        return estimator

    estimator = benchmark(build)
    assert estimator.diagnostics(DEFAULT_DEADLINE)["theta"] >= 1


def test_rrset_group_utilities(benchmark, rr_estimator):
    seeds = [rr_estimator.label(p) for p in range(20)]
    state = rr_estimator.state_for(seeds)
    utilities = benchmark(rr_estimator.group_utilities, state, DEFAULT_DEADLINE)
    assert utilities.sum() > 0


def test_rrset_budget_solve(benchmark, rr_estimator):
    solution = benchmark.pedantic(
        solve_tcim_budget,
        args=(rr_estimator, BUDGET, DEFAULT_DEADLINE),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert len(solution.seeds) == BUDGET


def test_rrset_vs_worlds_record(dataset, ensemble, rr_estimator):
    """Head-to-head: build + solve wall time and relative utility error.

    The error compares each estimator's valuation of the *other's*
    seed set too, so the committed JSON shows whether the cheaper
    estimator would have changed the decision, not just the number.
    """
    graph, assignment = dataset

    def build_worlds():
        return WorldEnsemble(graph, assignment, n_worlds=N_WORLDS, seed=3)

    def build_rrset():
        estimator = RRSetEstimator(graph, assignment, seed=3)
        estimator.diagnostics(DEFAULT_DEADLINE)
        return estimator

    worlds_build_s = best_of(build_worlds, repeats=2)
    rrset_build_s = best_of(build_rrset, repeats=2)

    worlds_solution = solve_tcim_budget(ensemble, BUDGET, DEFAULT_DEADLINE)
    rr_solution = solve_tcim_budget(rr_estimator, BUDGET, DEFAULT_DEADLINE)
    worlds_solve_s = best_of(
        lambda: solve_tcim_budget(ensemble, BUDGET, DEFAULT_DEADLINE), repeats=2
    )
    rrset_solve_s = best_of(
        lambda: solve_tcim_budget(rr_estimator, BUDGET, DEFAULT_DEADLINE),
        repeats=2,
    )

    # Cross-valuation: each estimator scores both seed sets.
    rr_on_worlds_seeds = rr_estimator.total_utility(
        rr_estimator.state_for(worlds_solution.seeds), DEFAULT_DEADLINE
    )
    ens_on_worlds_seeds = ensemble.total_utility(
        ensemble.state_for(worlds_solution.seeds), DEFAULT_DEADLINE
    )
    rr_on_rr_seeds = rr_estimator.total_utility(
        rr_estimator.state_for(rr_solution.seeds), DEFAULT_DEADLINE
    )
    ens_on_rr_seeds = ensemble.total_utility(
        ensemble.state_for(rr_solution.seeds), DEFAULT_DEADLINE
    )
    relative_error = abs(rr_on_worlds_seeds - ens_on_worlds_seeds) / max(
        ens_on_worlds_seeds, 1e-12
    )
    # Neither estimator may think the other's seed set is junk.
    assert ens_on_rr_seeds >= 0.8 * ens_on_worlds_seeds
    assert relative_error < 0.15

    diag = rr_estimator.diagnostics(DEFAULT_DEADLINE)
    record_bench(
        "rrset_vs_worlds",
        {
            "graph": {
                "dataset": "default_synthetic(seed=0)",
                "nodes": graph.number_of_nodes(),
                "directed_edges": graph.number_of_edges(),
                "deadline": DEFAULT_DEADLINE,
                "budget": BUDGET,
            },
            "build": {
                "worlds_s": round(worlds_build_s, 6),
                "rrset_s": round(rrset_build_s, 6),
                "n_worlds": N_WORLDS,
                "theta": int(diag["theta"]),
                "rounds": int(diag["rounds"]),
            },
            "solve": {
                "worlds_s": round(worlds_solve_s, 6),
                "rrset_s": round(rrset_solve_s, 6),
            },
            "utility": {
                "worlds_seeds_on_worlds": round(ens_on_worlds_seeds, 4),
                "worlds_seeds_on_rrset": round(rr_on_worlds_seeds, 4),
                "rrset_seeds_on_worlds": round(ens_on_rr_seeds, 4),
                "rrset_seeds_on_rrset": round(rr_on_rr_seeds, 4),
                "relative_error": round(relative_error, 4),
            },
            "memory_bytes": {
                "worlds": ensemble.memory_bytes(),
                "rrset": rr_estimator.memory_bytes(),
            },
        },
        path=RESULTS_PATH,
    )
