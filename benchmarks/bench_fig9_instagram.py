"""Benchmarks: Figure 9 — Instagram-Activities (scaled surrogate)."""

from conftest import run_and_check


def test_fig9a_budget_problem(benchmark):
    run_and_check(benchmark, "fig9a")


def test_fig9b_cover_influence(benchmark):
    run_and_check(benchmark, "fig9b")


def test_fig9c_cover_sizes(benchmark):
    run_and_check(benchmark, "fig9c")
