"""Sweep throughput: shared ensemble cache vs cold per-cell builds.

The sweep runner funnels every cell through one shared-cache session,
so cells that differ only in solver overrides reuse one world build.
This benchmark measures the cells/sec that sharing buys on a grid
deliberately shaped to exercise it — one ensemble axis x one solver
axis, so half the grid's builds are cache hits — against a cold run
that clears the session cache before every cell (what a naive
per-cell script would pay).

Both runs produce bit-identical deterministic rows (asserted each
repeat, so the benchmark doubles as an equivalence smoke).  Numbers
land in ``BENCH_sweep.json``.  Regenerate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep.py --benchmark-disable
"""

import shutil
import tempfile
from pathlib import Path

from conftest import best_of, record_bench

from repro.api import RunSpec, Session
from repro.sweep import SweepSpec, deterministic_row, run_sweep

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"
REPEATS = 3


def bench_spec() -> SweepSpec:
    base = RunSpec.from_dict(
        {
            "ensemble": {
                "dataset": "synthetic",
                "dataset_params": {"n": 200, "activation_probability": 0.05},
                "n_worlds": 40,
            },
            "solver": {
                "problem": "budget",
                "deadline": 15.0,
                "fair": True,
                "budget": 5,
            },
        }
    )
    # 2 ensembles x 3 budgets = 6 cells, 2 builds when shared.
    return SweepSpec(
        name="bench",
        base=base,
        axes={
            "ensemble.dataset_params.p_hom": [0.01, 0.04],
            "solver.budget": [3, 5, 8],
        },
        baselines=("degree",),
        seed=11,
    )


def run_once(spec: SweepSpec, shared: bool):
    """One full sweep into a throwaway dir; optionally cold per cell."""
    out = Path(tempfile.mkdtemp(prefix="bench_sweep_"))
    session = Session()
    progress = None
    if not shared:
        progress = lambda cell, row, computed: session.clear_cache()  # noqa: E731
    try:
        summary = run_sweep(
            spec, out / "run", session=session, progress=progress
        )
        return summary, session.cache_builds
    finally:
        shutil.rmtree(out, ignore_errors=True)


def test_bench_sweep_cache_sharing():
    spec = bench_spec()
    cells = spec.cell_count()

    rows_by_mode = {}

    def shared_run():
        rows_by_mode["shared"], shared_run.builds = run_once(spec, True)

    def cold_run():
        rows_by_mode["cold"], cold_run.builds = run_once(spec, False)

    shared_seconds = best_of(shared_run, repeats=REPEATS)
    cold_seconds = best_of(cold_run, repeats=REPEATS)

    # Sharing is a pure speed layer: same deterministic rows either way.
    shared_rows = [deterministic_row(r) for r in rows_by_mode["shared"].rows]
    cold_rows = [deterministic_row(r) for r in rows_by_mode["cold"].rows]
    assert shared_rows == cold_rows

    distinct = len(
        {cell.spec.ensemble.fingerprint() for cell in spec.expand()}
    )
    assert shared_run.builds == distinct
    assert cold_run.builds == cells

    record_bench(
        "sweep_cache_sharing",
        {
            "cells": cells,
            "distinct_ensembles": distinct,
            "shared_seconds": round(shared_seconds, 4),
            "cold_seconds": round(cold_seconds, 4),
            "shared_cells_per_second": round(cells / shared_seconds, 2),
            "cold_cells_per_second": round(cells / cold_seconds, 2),
            "speedup": round(cold_seconds / shared_seconds, 2),
        },
        path=RESULTS_PATH,
    )
