"""Benchmarks: Figure 4 — synthetic budget-problem panels.

fig4a: P1 vs P4-log vs P4-sqrt influence; fig4b: budget sweep;
fig4c: deadline sweep disparity.
"""

from conftest import run_and_check


def test_fig4a_influence_by_algorithm(benchmark):
    run_and_check(benchmark, "fig4a")


def test_fig4b_varying_budget(benchmark):
    run_and_check(benchmark, "fig4b")


def test_fig4c_varying_deadline(benchmark):
    run_and_check(benchmark, "fig4c")
