"""Micro-benchmarks for the greedy solvers (CELF vs plain greedy).

Quantifies the CELF speedup DESIGN.md claims and times the four paper
solvers end-to-end on the default synthetic dataset.  The batched
vs scalar engine comparisons additionally record their wall times into
``BENCH_solvers.json`` (next to ``bench_gains.py``'s oracle-level
numbers) and assert identical outputs.
"""

import pytest

from conftest import best_of, record_bench

from repro.datasets.synthetic import DEFAULT_DEADLINE, default_synthetic
from repro.influence.ensemble import WorldEnsemble
from repro.core.budget import solve_fair_tcim_budget, solve_tcim_budget
from repro.core.cover import solve_fair_tcim_cover, solve_tcim_cover
from repro.core.concave import log1p
from repro.core.greedy import lazy_greedy, plain_greedy
from repro.core.objectives import TotalInfluenceObjective


@pytest.fixture(scope="module")
def ensemble():
    graph, assignment = default_synthetic(seed=0)
    return WorldEnsemble(graph, assignment, n_worlds=60, seed=1)


def test_solve_p1_budget(benchmark, ensemble):
    solution = benchmark(solve_tcim_budget, ensemble, 30, DEFAULT_DEADLINE)
    assert len(solution.seeds) == 30


def test_solve_p4_budget_log(benchmark, ensemble):
    solution = benchmark(
        solve_fair_tcim_budget, ensemble, 30, DEFAULT_DEADLINE, log1p
    )
    assert len(solution.seeds) == 30


def test_solve_p2_cover(benchmark, ensemble):
    solution = benchmark(solve_tcim_cover, ensemble, 0.2, DEFAULT_DEADLINE)
    assert solution.report.population_fraction >= 0.2 - 1e-9


def test_solve_p6_cover(benchmark, ensemble):
    solution = benchmark(solve_fair_tcim_cover, ensemble, 0.2, DEFAULT_DEADLINE)
    assert (solution.report.fraction_influenced >= 0.2 - 1e-6).all()


def test_celf_engine(benchmark, ensemble):
    trace = benchmark(
        lazy_greedy, ensemble, TotalInfluenceObjective(), DEFAULT_DEADLINE, 15
    )
    assert trace.size == 15


def test_plain_engine(benchmark, ensemble):
    trace = benchmark(
        plain_greedy, ensemble, TotalInfluenceObjective(), DEFAULT_DEADLINE, 15
    )
    assert trace.size == 15


def test_celf_end_to_end_batched_vs_scalar(ensemble):
    """Whole CELF solves, batched oracle vs block_size=1 scalar path.

    The first round dominates CELF (every later round touches a
    handful of stale candidates), so the end-to-end ratio approaches
    the first-round oracle speedup as budgets shrink.
    """
    objective = TotalInfluenceObjective()

    def run(block_size):
        return lazy_greedy(
            ensemble, objective, DEFAULT_DEADLINE, 15, block_size=block_size
        )

    batched = run(None)
    scalar = run(1)
    assert batched.seeds == scalar.seeds
    assert batched.stopped_reason == scalar.stopped_reason

    batched_s = best_of(lambda: run(None))
    scalar_s = best_of(lambda: run(1))
    record_bench(
        "celf_end_to_end",
        {
            "budget": 15,
            "batched_s": round(batched_s, 6),
            "scalar_s": round(scalar_s, 6),
            "speedup": round(scalar_s / batched_s, 2),
        },
    )
    assert batched_s <= scalar_s


def test_plain_greedy_end_to_end_batched_vs_scalar(ensemble):
    """Plain greedy re-scores every candidate every round — the oracle's
    best case end-to-end."""
    objective = TotalInfluenceObjective()

    def run(block_size):
        return plain_greedy(
            ensemble, objective, DEFAULT_DEADLINE, 10, block_size=block_size
        )

    batched = run(None)
    scalar = run(1)
    assert batched.seeds == scalar.seeds

    batched_s = best_of(lambda: run(None), repeats=2)
    scalar_s = best_of(lambda: run(1), repeats=2)
    record_bench(
        "plain_greedy_end_to_end",
        {
            "budget": 10,
            "batched_s": round(batched_s, 6),
            "scalar_s": round(scalar_s, 6),
            "speedup": round(scalar_s / batched_s, 2),
        },
    )
    # No timing assert: later plain-greedy rounds run the elementwise
    # batch path at ~parity with scalar (only the first round is
    # table-fast), so the margin is within shared-runner noise.  The
    # perf gate lives in bench_gains.py where the margin is 20x; here
    # the identity assert above is the contract.
