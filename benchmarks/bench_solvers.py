"""Micro-benchmarks for the greedy solvers (CELF vs plain greedy).

Quantifies the CELF speedup DESIGN.md claims and times the four paper
solvers end-to-end on the default synthetic dataset.
"""

import pytest

from repro.datasets.synthetic import DEFAULT_DEADLINE, default_synthetic
from repro.influence.ensemble import WorldEnsemble
from repro.core.budget import solve_fair_tcim_budget, solve_tcim_budget
from repro.core.cover import solve_fair_tcim_cover, solve_tcim_cover
from repro.core.concave import log1p
from repro.core.greedy import lazy_greedy, plain_greedy
from repro.core.objectives import TotalInfluenceObjective


@pytest.fixture(scope="module")
def ensemble():
    graph, assignment = default_synthetic(seed=0)
    return WorldEnsemble(graph, assignment, n_worlds=60, seed=1)


def test_solve_p1_budget(benchmark, ensemble):
    solution = benchmark(solve_tcim_budget, ensemble, 30, DEFAULT_DEADLINE)
    assert len(solution.seeds) == 30


def test_solve_p4_budget_log(benchmark, ensemble):
    solution = benchmark(
        solve_fair_tcim_budget, ensemble, 30, DEFAULT_DEADLINE, log1p
    )
    assert len(solution.seeds) == 30


def test_solve_p2_cover(benchmark, ensemble):
    solution = benchmark(solve_tcim_cover, ensemble, 0.2, DEFAULT_DEADLINE)
    assert solution.report.population_fraction >= 0.2 - 1e-9


def test_solve_p6_cover(benchmark, ensemble):
    solution = benchmark(solve_fair_tcim_cover, ensemble, 0.2, DEFAULT_DEADLINE)
    assert (solution.report.fraction_influenced >= 0.2 - 1e-6).all()


def test_celf_engine(benchmark, ensemble):
    trace = benchmark(
        lazy_greedy, ensemble, TotalInfluenceObjective(), DEFAULT_DEADLINE, 15
    )
    assert trace.size == 15


def test_plain_engine(benchmark, ensemble):
    trace = benchmark(
        plain_greedy, ensemble, TotalInfluenceObjective(), DEFAULT_DEADLINE, 15
    )
    assert trace.size == 15
