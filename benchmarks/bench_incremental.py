"""Incremental re-solve latency: in-place repair vs from-scratch rebuild.

The streaming story of the incremental layer, measured end to end: a
graph the session has already solved mutates by a handful of edges, and
the next answer can come from (a) ``apply_delta`` — re-threshold the
touched edges' keyed coins, recompute distances only in changed worlds
— plus a warm-started CELF solve, or (b) building a fresh
:class:`WorldEnsemble` on the mutated graph and solving cold.  Both
paths produce bit-identical seed sets (asserted on every repeat, so the
benchmark doubles as an equivalence smoke); only the latency differs.

Times best-of-``REPEATS`` for 1-, 4- and 16-edge deltas on the default
synthetic SBM and commits the numbers (plus the measured
``os.cpu_count()``) to ``BENCH_incremental.json``.  The committed floor
asserted in CI is the tentpole claim: on a single-edge delta the
repair+warm path beats rebuild+cold — the repair's work scales with
*changed worlds*, the rebuild's with all of them.  Regenerate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_incremental.py --benchmark-disable
"""

import os
import time
from pathlib import Path

import numpy as np

from conftest import record_bench

from repro.core.concave import log1p
from repro.core.greedy import WarmStart, lazy_greedy
from repro.core.objectives import ConcaveSumObjective
from repro.datasets.synthetic import DEFAULT_DEADLINE, default_synthetic
from repro.graph.delta import GraphDelta
from repro.influence.ensemble import WorldEnsemble

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_incremental.json"
N_WORLDS = 32
WORLD_SEED = 9
BUDGET = 8
DELTA_SIZES = (1, 4, 16)
REPEATS = 3


def make_delta(graph, size: int) -> GraphDelta:
    """A deterministic ``size``-edge delta: removes, inserts, reweights."""
    rng = np.random.default_rng(size)
    # Remove the *highest-probability* edges: they are live in the most
    # worlds, so the delta actually dirties worlds instead of touching
    # coins that never landed.
    by_probability = sorted(graph.edges(), key=lambda e: (-e[2], e[0], e[1]))
    present = sorted((u, v) for u, v, _ in graph.edges())
    nodes = graph.nodes()
    n_removes = max(1, size // 3) if size > 1 else 1
    n_inserts = (size - n_removes) // 2
    n_reweights = size - n_removes - n_inserts
    removes = tuple((u, v) for u, v, _ in by_probability[:n_removes])
    rest = [e for e in present if e not in removes]
    picks = rng.choice(len(rest), size=n_reweights, replace=False)
    reweights = tuple(
        (*rest[int(i)], float(rng.uniform(0.01, 0.99))) for i in picks
    )
    inserts = []
    while len(inserts) < n_inserts:
        u, v = (nodes[int(i)] for i in rng.choice(len(nodes), 2, replace=False))
        if not graph.has_edge(u, v) and (u, v) not in [e[:2] for e in inserts]:
            inserts.append((u, v, float(rng.uniform(0.01, 0.99))))
    return GraphDelta(inserts=tuple(inserts), removes=removes, reweights=reweights)


def test_repair_vs_rebuild_latency():
    points = []
    graph0, _ = default_synthetic(seed=0)
    record_bench(
        "graph",
        {
            "dataset": "default_synthetic(seed=0)",
            "nodes": graph0.number_of_nodes(),
            "directed_edges": graph0.number_of_edges(),
            "n_worlds": N_WORLDS,
            "budget": BUDGET,
            "deadline": DEFAULT_DEADLINE,
            "cpu_count": os.cpu_count(),
        },
        path=RESULTS_PATH,
    )

    for size in DELTA_SIZES:
        repair_best = rebuild_best = float("inf")
        repaired_worlds = None
        for _ in range(REPEATS):
            # --- repair + warm path: ensemble already built and solved.
            graph, assignment = default_synthetic(seed=0)
            delta = make_delta(graph, size)
            ensemble = WorldEnsemble(
                graph, assignment, n_worlds=N_WORLDS, seed=WORLD_SEED,
                backend="dense",
            )
            objective = ConcaveSumObjective(log1p, ensemble.group_sizes)
            prior = lazy_greedy(
                ensemble, objective, DEFAULT_DEADLINE, max_seeds=BUDGET
            )
            started = time.perf_counter()
            report = ensemble.apply_delta(delta)
            warm = lazy_greedy(
                ensemble,
                objective,
                DEFAULT_DEADLINE,
                max_seeds=BUDGET,
                warm_start=WarmStart(
                    gains=prior.first_round_gains, refresh=report.affected
                ),
            )
            repair_best = min(repair_best, time.perf_counter() - started)
            repaired_worlds = report.repaired_worlds

            # --- rebuild + cold path on the equivalently mutated graph.
            graph2, assignment2 = default_synthetic(seed=0)
            started = time.perf_counter()
            graph2.apply_delta(delta)
            fresh = WorldEnsemble(
                graph2, assignment2, n_worlds=N_WORLDS, seed=WORLD_SEED,
                backend="dense",
            )
            cold = lazy_greedy(
                fresh,
                ConcaveSumObjective(log1p, fresh.group_sizes),
                DEFAULT_DEADLINE,
                max_seeds=BUDGET,
            )
            rebuild_best = min(rebuild_best, time.perf_counter() - started)

            # Equivalence on every repeat: same seeds, same gains.
            assert warm.seeds == cold.seeds
            np.testing.assert_array_equal(
                warm.first_round_gains, cold.first_round_gains
            )
            assert warm.total_evaluations <= cold.total_evaluations

        points.append(
            {
                "delta_edges": size,
                "repair_warm_s": round(repair_best, 6),
                "rebuild_cold_s": round(rebuild_best, 6),
                "speedup": round(rebuild_best / repair_best, 2),
                "repaired_worlds": repaired_worlds,
                "n_worlds": N_WORLDS,
            }
        )

    record_bench(
        "repair_vs_rebuild",
        {"repeats": REPEATS, "points": points},
        path=RESULTS_PATH,
    )

    # The tentpole floor: a single-edge delta must re-solve faster via
    # repair + warm start than via rebuild + cold solve.
    single = points[0]
    assert single["repair_warm_s"] < single["rebuild_cold_s"], (
        f"single-edge repair {single['repair_warm_s']}s did not beat "
        f"rebuild {single['rebuild_cold_s']}s"
    )
