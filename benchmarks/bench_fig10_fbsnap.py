"""Benchmarks: Figure 10 — Facebook-SNAP with spectral groups."""

from conftest import run_and_check


def test_fig10a_budget_problem(benchmark):
    run_and_check(benchmark, "fig10a")


def test_fig10b_cover_influence(benchmark):
    run_and_check(benchmark, "fig10b")


def test_fig10c_cover_sizes(benchmark):
    run_and_check(benchmark, "fig10c")
