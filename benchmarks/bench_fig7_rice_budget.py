"""Benchmarks: Figure 7 — Rice-Facebook budget-problem panels."""

from conftest import run_and_check


def test_fig7a_influence_by_algorithm(benchmark):
    run_and_check(benchmark, "fig7a")


def test_fig7b_varying_budget(benchmark):
    run_and_check(benchmark, "fig7b")


def test_fig7c_varying_deadline(benchmark):
    run_and_check(benchmark, "fig7c")
