"""Thread-scaling smoke for the world-sharded gain oracle.

Measures the cover-sized batched workloads of the greedy hot path —
``candidate_gains_batch`` over the full candidate pool against a
cover-sized seed state, the ``group_utilities_sweep`` histogram build,
and the sparse backend's per-world BFS materialisation — at 1, 2 and 4
workers, and commits the scaling numbers (plus the measured
``os.cpu_count()``, without which a scaling ratio is meaningless) to
``BENCH_threads.json``.

Every timed pair also asserts bit-identical outputs across worker
counts, so the benchmark doubles as an end-to-end determinism smoke.
As with ``bench_gains.py``, the hard floor asserted in CI is only
robustness ("threading is never a catastrophic pessimisation"): shared
runners — and single-core containers, where threads can only ever add
overhead — cannot certify a speedup ratio.  The committed JSON records
the honest ratios of whatever machine last regenerated it; regenerate
on quiet multi-core hardware with::

    PYTHONPATH=src python -m pytest benchmarks/bench_threads.py --benchmark-disable
"""

import os
from pathlib import Path

import numpy as np
import pytest

from conftest import best_of, record_bench

from repro.datasets.synthetic import DEFAULT_DEADLINE, default_synthetic
from repro.influence.ensemble import WorldEnsemble
from repro.core.cover import solve_fair_tcim_cover
from repro.core.greedy import DEFAULT_BLOCK_SIZE
from repro.core.objectives import TotalInfluenceObjective

THREADS_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_threads.json"
N_WORLDS = 100
WORKER_COUNTS = (1, 2, 4)

#: CI floor: a threaded run may lose at most this factor to serial
#: (thread handoff on an oversubscribed or single-core runner), never
#: more.  Real scaling is recorded, not asserted.
MAX_SLOWDOWN = 2.0


@pytest.fixture(scope="module")
def ensemble():
    graph, assignment = default_synthetic(seed=0)
    ens = WorldEnsemble(graph, assignment, n_worlds=N_WORLDS, seed=1)
    record_bench(
        "graph",
        {
            "dataset": "default_synthetic(seed=0)",
            "nodes": graph.number_of_nodes(),
            "directed_edges": graph.number_of_edges(),
            "n_worlds": N_WORLDS,
            "n_candidates": ens.n_candidates,
            "cpu_count": os.cpu_count(),
        },
        path=THREADS_RESULTS_PATH,
    )
    return ens


@pytest.fixture(scope="module")
def cover_state(ensemble):
    """A cover-sized seed state — the heaviest state the figures score."""
    seeds = solve_fair_tcim_cover(ensemble, 0.45, DEFAULT_DEADLINE).seeds
    return ensemble.state_for(seeds)


def batched_gains(ensemble, state, objective, base_value):
    return np.concatenate(
        [
            ensemble.candidate_gains_batch(
                state,
                range(start, min(start + DEFAULT_BLOCK_SIZE, ensemble.n_candidates)),
                DEFAULT_DEADLINE,
                objective,
                base_value=base_value,
            )
            for start in range(0, ensemble.n_candidates, DEFAULT_BLOCK_SIZE)
        ]
    )


def test_gains_batch_thread_scaling(ensemble, cover_state):
    """candidate_gains_batch over every candidate, cover-sized state."""
    objective = TotalInfluenceObjective()
    base = objective.value(
        ensemble.group_utilities(cover_state, DEFAULT_DEADLINE)
    )
    previous = ensemble.set_workers(None)
    try:
        rows = []
        reference = None
        serial_s = None
        for workers in WORKER_COUNTS:
            ensemble.set_workers(workers)
            gains = batched_gains(ensemble, cover_state, objective, base)
            if reference is None:
                reference = gains
            else:
                np.testing.assert_array_equal(gains, reference)
            elapsed = best_of(
                lambda: batched_gains(ensemble, cover_state, objective, base)
            )
            if serial_s is None:
                serial_s = elapsed
            rows.append(
                {
                    "workers": workers,
                    "time_s": round(elapsed, 6),
                    "speedup": round(serial_s / elapsed, 2),
                }
            )
        record_bench(
            "gains_batch_scaling",
            {
                "workload": "cover-sized candidate_gains_batch, all candidates",
                "seed_set_size": cover_state.size,
                "block_size": DEFAULT_BLOCK_SIZE,
                "points": rows,
            },
            path=THREADS_RESULTS_PATH,
        )
        worst = min(row["speedup"] for row in rows)
        assert worst >= 1.0 / MAX_SLOWDOWN, (
            f"threaded gains batch catastrophically slower than serial: {rows}"
        )
    finally:
        ensemble.set_workers(previous)


def test_sweep_histogram_thread_scaling(ensemble, cover_state):
    """The sweep's full histogram build, sharded across workers.

    This graph's ``R * n`` sits below the production work floor
    (``MIN_SHARD_ITEMS``), where the pool rightly declines to engage —
    so the floor is dropped for the measurement, otherwise every row
    would time the identical inline path and the scaling numbers (and
    the cross-worker identity check) would be vacuous.
    """
    from repro.influence import parallel

    deadlines = (1, 2, 5, 10, 20, float("inf"))
    previous = ensemble.set_workers(None)
    previous_floor = parallel.MIN_SHARD_ITEMS
    parallel.MIN_SHARD_ITEMS = 1
    try:
        rows = []
        reference = None
        serial_s = None
        for workers in WORKER_COUNTS:
            ensemble.set_workers(workers)

            def sweep():
                # Drop the cached histogram so every call measures (and
                # checks) the full sharded build.
                cover_state.time_hist = None
                return ensemble.group_utilities_sweep(cover_state, deadlines)

            values = sweep()
            if reference is None:
                reference = values
            else:
                np.testing.assert_array_equal(values, reference)
            elapsed = best_of(sweep)
            if serial_s is None:
                serial_s = elapsed
            rows.append(
                {
                    "workers": workers,
                    "time_s": round(elapsed, 6),
                    "speedup": round(serial_s / elapsed, 2),
                }
            )
        cover_state.time_hist = None
        record_bench(
            "sweep_histogram_scaling",
            {
                "n_deadlines": len(deadlines),
                "note": "measured with the MIN_SHARD_ITEMS floor dropped",
                "points": rows,
            },
            path=THREADS_RESULTS_PATH,
        )
        worst = min(row["speedup"] for row in rows)
        # Laxer floor than the other workloads: with the work floor
        # dropped, this is a sub-millisecond op where pure executor
        # handoff dominates on small/oversubscribed runners.
        assert worst >= 1.0 / (2 * MAX_SLOWDOWN), (
            f"threaded sweep histogram catastrophically slower than serial: {rows}"
        )
    finally:
        parallel.MIN_SHARD_ITEMS = previous_floor
        ensemble.set_workers(previous)


def test_sparse_build_thread_scaling():
    """SparseBackend construction: per-world BFS sharded across workers."""
    graph, assignment = default_synthetic(seed=0)
    rows = []
    reference = None
    serial_s = None
    for workers in WORKER_COUNTS:

        def build():
            return WorldEnsemble(
                graph,
                assignment,
                n_worlds=20,
                seed=5,
                backend="sparse",
                workers=workers,
            )

        ens = build()
        state = ens.state_for(ens.candidate_labels[:4])
        utilities = ens.group_utilities(state, DEFAULT_DEADLINE)
        if reference is None:
            reference = utilities
        else:
            np.testing.assert_array_equal(utilities, reference)
        elapsed = best_of(build, repeats=2)
        if serial_s is None:
            serial_s = elapsed
        rows.append(
            {
                "workers": workers,
                "time_s": round(elapsed, 6),
                "speedup": round(serial_s / elapsed, 2),
            }
        )
    record_bench(
        "sparse_build_scaling",
        {"n_worlds": 20, "points": rows},
        path=THREADS_RESULTS_PATH,
    )
    worst = min(row["speedup"] for row in rows)
    assert worst >= 1.0 / MAX_SLOWDOWN, (
        f"threaded sparse build catastrophically slower than serial: {rows}"
    )
