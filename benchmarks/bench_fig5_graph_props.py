"""Benchmarks: Figure 5 — graph properties vs disparity (synthetic).

fig5a: activation-probability sweep; fig5b: group-size ratios;
fig5c: inter/intra connectivity ratios.
"""

from conftest import run_and_check


def test_fig5a_activation_probability(benchmark):
    run_and_check(benchmark, "fig5a")


def test_fig5b_group_sizes(benchmark):
    run_and_check(benchmark, "fig5b")


def test_fig5c_cliquishness(benchmark):
    run_and_check(benchmark, "fig5c")
