"""Service throughput: solves/sec under dedup, cold vs warm cache.

The service's pitch is that concurrent and repeated traffic should pay
for *distinct* work only: identical in-flight requests share one
solve, requests sharing an ensemble share one world build, and
sequential repeats hit the byte-bounded session cache.  This benchmark
measures that, honestly, against an in-process server on an ephemeral
loopback port (no network beyond localhost, no subprocess):

- **dedup rate sweep (0% / 50% / 90%)** — a fixed number of concurrent
  requests where the given fraction duplicate one base spec and the
  rest are unique ensembles.  Higher dedup must not be slower; at 90%
  the in-flight dedup counter must actually fire.
- **cold vs warm** — the same workload replayed against the
  now-populated cache; the warm pass does zero world builds, so its
  requests/sec floor is the cold pass's (asserted with slack).

Every response in a deduped batch is asserted byte-identical to the
others — throughput that broke bit-identity would not count.  Numbers
(plus the measured ``os.cpu_count()``) are committed to
``BENCH_serve.json``.  Regenerate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py --benchmark-disable
"""

import json
import os
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from conftest import record_bench

from repro.api import EnsembleSpec, RunSpec, SolverSpec
from repro.service import ServiceConfig, start_in_thread

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_serve.json"
REQUESTS = 16
DEDUP_RATES = (0.0, 0.5, 0.9)
SYN_PARAMS = {"n": 200, "activation_probability": 0.08}
N_WORLDS = 16
BUDGET = 4
CLIENT_THREADS = 8


def spec_payload(world_seed: int) -> bytes:
    spec = RunSpec(
        ensemble=EnsembleSpec(
            dataset="synthetic",
            dataset_params=dict(SYN_PARAMS),
            dataset_seed=0,
            n_worlds=N_WORLDS,
            world_seed=world_seed,
        ),
        solver=SolverSpec(problem="budget", deadline=15.0, fair=True, budget=BUDGET),
    )
    return json.dumps(spec.to_dict()).encode()


def workload(dedup_rate: float) -> list:
    """REQUESTS payloads where ``dedup_rate`` of them share one spec."""
    duplicates = int(round(REQUESTS * dedup_rate))
    unique = REQUESTS - duplicates
    payloads = [spec_payload(world_seed=100 + i) for i in range(max(unique, 1))]
    while len(payloads) < REQUESTS:
        payloads.append(payloads[0])
    return payloads


def fire(url: str, payloads: list) -> tuple:
    """POST every payload concurrently; returns (seconds, bodies)."""

    def one(body: bytes) -> bytes:
        request = urllib.request.Request(
            url + "/v1/solve", data=body, method="POST"
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200
            return response.read()

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
        bodies = list(pool.map(one, payloads))
    return time.perf_counter() - started, bodies


def test_throughput_under_dedup_and_cache():
    record_bench(
        "workload",
        {
            "dataset": f"synthetic sbm {SYN_PARAMS}",
            "n_worlds": N_WORLDS,
            "budget": BUDGET,
            "requests_per_point": REQUESTS,
            "client_threads": CLIENT_THREADS,
            "cpu_count": os.cpu_count(),
        },
        path=RESULTS_PATH,
    )

    points = []
    for rate in DEDUP_RATES:
        payloads = workload(rate)
        # Cache sized to the workload: this point measures sharing, not
        # eviction churn (eviction correctness is tests' business).
        server = start_in_thread(
            ServiceConfig(port=0, max_cached_ensembles=2 * REQUESTS)
        )
        try:
            cold_seconds, cold_bodies = fire(server.url, payloads)
            counters = dict(server.service.counters)
            builds = server.service.session.cache_builds
            warm_seconds, warm_bodies = fire(server.url, payloads)
            warm_builds = server.service.session.cache_builds - builds
        finally:
            server.stop()

        # Honesty before throughput: identical payloads → identical
        # bytes (timings aside), whether deduped, cached or solved.
        def key(body: bytes) -> str:
            parsed = json.loads(body)
            parsed.pop("timings")
            return json.dumps(parsed, sort_keys=True)

        for bodies in (cold_bodies, warm_bodies):
            by_payload = {}
            for payload, body in zip(payloads, bodies):
                by_payload.setdefault(payload, set()).add(key(body))
            assert all(len(keys) == 1 for keys in by_payload.values())
        assert {key(b) for b in cold_bodies} == {key(b) for b in warm_bodies}

        # The sharing machinery must have actually fired: duplicates do
        # no world builds (they join a flight or hit the cache), and
        # every request is accounted as exactly one of created/joined.
        # How *many* joined is scheduling-dependent (a fully serialized
        # 1-core run can legally dedup zero), so that is recorded, not
        # asserted.
        unique_specs = len(set(payloads))
        assert builds == unique_specs, (builds, unique_specs)
        assert warm_builds == 0  # the warm pass reuses every ensemble
        assert counters["solves"] + counters["deduped"] == REQUESTS

        points.append(
            {
                "dedup_rate": rate,
                "unique_specs": unique_specs,
                "cold_seconds": round(cold_seconds, 4),
                "cold_rps": round(REQUESTS / cold_seconds, 2),
                "warm_seconds": round(warm_seconds, 4),
                "warm_rps": round(REQUESTS / warm_seconds, 2),
                "cold_solves": counters["solves"],
                "cold_deduped": counters["deduped"],
            }
        )

    record_bench("throughput", points, path=RESULTS_PATH)

    # Warm must beat cold: no builds, pure cached solves.  The real
    # ratio is ~2-3x; the floor is deliberately loose because shared CI
    # runners (and 1-core containers under load) add multi-x noise.
    for point in points:
        assert point["warm_rps"] >= point["cold_rps"] * 0.5, point
