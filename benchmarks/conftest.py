"""Benchmark helpers.

Every per-figure benchmark runs its experiment once (pedantic mode: the
workloads are seconds-long, so statistical repetition would waste the
budget), records the wall time, and asserts the experiment's shape
checks — the qualitative claims of the paper — still hold.

:func:`record_bench` merges measured numbers into a results JSON next
to the benchmarks (``BENCH_solvers.json`` for the solver/gain-oracle
suite) so speedups are committed alongside the code that claims them.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable

import pytest

from repro.experiments.registry import run_experiment

SOLVER_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_solvers.json"


def record_bench(section: str, payload, path: Path = SOLVER_RESULTS_PATH) -> None:
    """Merge one section of measured results into a bench JSON file."""
    results = {}
    if path.exists():
        results = json.loads(path.read_text())
    results[section] = payload
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds.

    Minimum (not mean) is the standard noise-robust statistic for
    micro-benchmarks: interruptions only ever make a run slower.
    """
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_and_check(benchmark, experiment_id: str, seed: int = 0):
    """Benchmark one experiment (quick scale) and enforce its checks."""
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"quick": True, "seed": seed},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    failing = [c for c in result.shape_checks if not c.passed]
    assert not failing, "; ".join(c.as_text() for c in failing)
    assert result.rows, f"{experiment_id} produced no rows"
    return result
