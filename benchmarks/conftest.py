"""Benchmark helpers.

Every per-figure benchmark runs its experiment once (pedantic mode: the
workloads are seconds-long, so statistical repetition would waste the
budget), records the wall time, and asserts the experiment's shape
checks — the qualitative claims of the paper — still hold.
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import run_experiment


def run_and_check(benchmark, experiment_id: str, seed: int = 0):
    """Benchmark one experiment (quick scale) and enforce its checks."""
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"quick": True, "seed": seed},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    failing = [c for c in result.shape_checks if not c.passed]
    assert not failing, "; ".join(c.as_text() for c in failing)
    assert result.rows, f"{experiment_id} produced no rows"
    return result
