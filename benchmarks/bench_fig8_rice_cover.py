"""Benchmarks: Figure 8 — Rice-Facebook cover-problem panels."""

from conftest import run_and_check


def test_fig8a_greedy_iterations(benchmark):
    run_and_check(benchmark, "fig8a")


def test_fig8b_quota_influence(benchmark):
    run_and_check(benchmark, "fig8b")


def test_fig8c_quota_sizes(benchmark):
    run_and_check(benchmark, "fig8c")
