"""Benchmarks: Theorems 1 and 2 measured on exactly solvable instances."""

from conftest import run_and_check


def test_thm1_budget_guarantee(benchmark):
    run_and_check(benchmark, "thm1")


def test_thm2_cover_guarantee(benchmark):
    run_and_check(benchmark, "thm2")
