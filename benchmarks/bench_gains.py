"""Batched gain oracle + deadline sweep: speedups over the scalar paths.

The two hot-path claims of the batch-oracle work, measured on the
default synthetic SBM and committed to ``BENCH_solvers.json``:

- a CELF first round (score *every* candidate against the empty state)
  through ``candidate_gains_batch`` vs the per-candidate scalar loop —
  the acceptance bar is >= 3x;
- a 6-point deadline sweep through ``group_utilities_sweep`` (one
  histogram + cumulative sum) vs six scalar ``group_utilities`` calls —
  the acceptance bar is >= 5x.

Every timed pair also asserts bit-identical outputs, so the benchmark
doubles as an end-to-end equivalence smoke: in CI (``--benchmark-disable``
changes nothing here — timings are manual ``perf_counter`` loops) the
hard floor asserted is only "batch is no slower than scalar", keeping
the job robust to noisy shared runners; the committed JSON records the
real ratios measured on quiet hardware.
"""

import math

import numpy as np
import pytest

from conftest import best_of, record_bench

from repro.datasets.synthetic import DEFAULT_DEADLINE, default_synthetic
from repro.influence.ensemble import WorldEnsemble
from repro.core.cover import solve_fair_tcim_cover
from repro.core.greedy import DEFAULT_BLOCK_SIZE, lazy_greedy
from repro.core.objectives import TotalInfluenceObjective

N_WORLDS = 100
DEADLINE_SWEEP = (1, 2, 5, 10, 20, math.inf)


@pytest.fixture(scope="module")
def ensemble():
    graph, assignment = default_synthetic(seed=0)
    ens = WorldEnsemble(graph, assignment, n_worlds=N_WORLDS, seed=1)
    record_bench(
        "graph",
        {
            "dataset": "default_synthetic(seed=0)",
            "nodes": graph.number_of_nodes(),
            "directed_edges": graph.number_of_edges(),
            "n_worlds": N_WORLDS,
            "n_candidates": ens.n_candidates,
        },
    )
    return ens


def scalar_first_round(ensemble, state, objective, base_value):
    return np.array(
        [
            objective.value(
                ensemble.candidate_group_utilities(state, p, DEFAULT_DEADLINE)
            )
            - base_value
            for p in range(ensemble.n_candidates)
        ]
    )


def batched_first_round(ensemble, state, objective, base_value, block_size):
    return np.concatenate(
        [
            ensemble.candidate_gains_batch(
                state,
                range(start, min(start + block_size, ensemble.n_candidates)),
                DEFAULT_DEADLINE,
                objective,
                base_value=base_value,
            )
            for start in range(0, ensemble.n_candidates, block_size)
        ]
    )


def test_first_round_batch_vs_scalar(ensemble):
    """The CELF first round: one gain per candidate, batched vs scalar."""
    objective = TotalInfluenceObjective()
    state = ensemble.empty_state()
    base = objective.value(ensemble.group_utilities(state, DEFAULT_DEADLINE))

    scalar_gains = scalar_first_round(ensemble, state, objective, base)
    batch_gains = batched_first_round(
        ensemble, state, objective, base, DEFAULT_BLOCK_SIZE
    )
    np.testing.assert_array_equal(batch_gains, scalar_gains)

    scalar_s = best_of(
        lambda: scalar_first_round(ensemble, state, objective, base)
    )
    batch_s = best_of(
        lambda: batched_first_round(
            ensemble, state, objective, base, DEFAULT_BLOCK_SIZE
        )
    )
    speedup = scalar_s / batch_s
    record_bench(
        "celf_first_round",
        {
            "n_candidates": ensemble.n_candidates,
            "block_size": DEFAULT_BLOCK_SIZE,
            "scalar_s": round(scalar_s, 6),
            "batch_s": round(batch_s, 6),
            "speedup": round(speedup, 2),
        },
    )
    # CI floor: the oracle must never be a pessimisation.  The >= 3x
    # acceptance ratio is recorded in BENCH_solvers.json from quiet
    # hardware rather than asserted on shared runners.
    assert batch_s <= scalar_s, (
        f"batched first round slower than scalar: {batch_s:.4f}s vs {scalar_s:.4f}s"
    )


def test_block_size_sweep(ensemble):
    """Speedup vs block size — the tuning data behind DEFAULT_BLOCK_SIZE."""
    objective = TotalInfluenceObjective()
    state = ensemble.empty_state()
    base = objective.value(ensemble.group_utilities(state, DEFAULT_DEADLINE))
    scalar_s = best_of(
        lambda: scalar_first_round(ensemble, state, objective, base)
    )
    rows = []
    for block_size in (8, 16, 32, 64, 128, 256):
        batch_s = best_of(
            lambda: batched_first_round(
                ensemble, state, objective, base, block_size
            )
        )
        rows.append(
            {
                "block_size": block_size,
                "batch_s": round(batch_s, 6),
                "speedup": round(scalar_s / batch_s, 2),
            }
        )
    record_bench(
        "block_size_sweep", {"scalar_s": round(scalar_s, 6), "blocks": rows}
    )
    assert min(r["batch_s"] for r in rows) <= scalar_s


def test_state_build_slab_vs_sequential(ensemble):
    """Bulk seed-state construction: one ``reduce_rows`` call per state.

    ``state_for`` now hands the whole seed set to the backend in one
    call (a view-slab ``np.minimum.reduce`` for contiguous runs,
    allocation-free row folds for scattered seeds, world-shardable
    across workers) instead of issuing one ``add_seed`` per seed with
    its per-seed bookkeeping; ``evaluate_at``, ``utilities_for`` and
    the sweep helpers all rebuild states through it.  Measured on the
    two rebuild workloads the figures run: a B=30 budget solution and
    a cover solution (where the sequential path's quadratic
    already-a-seed list scan starts to show).
    """
    budget_seeds = lazy_greedy(
        ensemble, TotalInfluenceObjective(), DEFAULT_DEADLINE, 30
    ).seeds
    cover_seeds = solve_fair_tcim_cover(ensemble, 0.45, DEFAULT_DEADLINE).seeds

    workloads = {}
    for name, seeds in (("budget_b30", budget_seeds), ("cover", cover_seeds)):

        def sequential_build():
            state = ensemble.empty_state()
            for node in seeds:
                ensemble.add_seed(state, ensemble.position(node))
            return state

        def slab_build():
            return ensemble.state_for(seeds)

        np.testing.assert_array_equal(
            slab_build().best_time, sequential_build().best_time
        )
        sequential_s = best_of(sequential_build)
        slab_s = best_of(slab_build)
        workloads[name] = {
            "seed_set_size": len(seeds),
            "sequential_s": round(sequential_s, 6),
            "slab_s": round(slab_s, 6),
            "speedup": round(sequential_s / slab_s, 2),
        }
        assert slab_s <= sequential_s * 1.5, (
            f"{name}: slab state build slower than sequential folds: "
            f"{slab_s:.4f}s vs {sequential_s:.4f}s"
        )
    record_bench("state_build", {"workloads": workloads})


def test_incremental_sweep_histogram(ensemble):
    """Growing-seed-set sweeps: incremental histogram vs full rebuilds.

    The pattern of the iteration figures (sweep after every greedy
    pick): with the state histogram maintained by ``add_seed``, only
    the first sweep bincounts the full ``(R, n)`` state; every later
    sweep is O(changed entries + k).  The rebuild baseline clears the
    cached histogram before each sweep, which is exactly what the
    pre-PR code did implicitly.
    """
    seeds = lazy_greedy(
        ensemble, TotalInfluenceObjective(), DEFAULT_DEADLINE, 20
    ).seeds
    positions = [ensemble.position(node) for node in seeds]

    def sweep_growing(incremental: bool):
        state = ensemble.empty_state()
        rows = []
        for position in positions:
            ensemble.add_seed(state, position)
            if not incremental:
                state.time_hist = None
            rows.append(ensemble.group_utilities_sweep(state, DEADLINE_SWEEP))
        return np.stack(rows)

    np.testing.assert_array_equal(sweep_growing(True), sweep_growing(False))
    rebuild_s = best_of(lambda: sweep_growing(False))
    incremental_s = best_of(lambda: sweep_growing(True))
    record_bench(
        "incremental_sweep",
        {
            "seed_set_size": len(seeds),
            "n_deadlines": len(DEADLINE_SWEEP),
            "rebuild_s": round(rebuild_s, 6),
            "incremental_s": round(incremental_s, 6),
            "speedup": round(rebuild_s / incremental_s, 2),
        },
    )
    assert incremental_s <= rebuild_s * 1.5, (
        f"incremental sweep histogram slower than full rebuilds: "
        f"{incremental_s:.4f}s vs {rebuild_s:.4f}s"
    )


def test_deadline_sweep_vs_per_tau(ensemble):
    """Fig 4c/5a/7c's evaluation pattern: many taus, one seed set.

    The pre-PR path (``pair_disparity`` / ``evaluate_at`` in a loop)
    rebuilt the seed-set state *per deadline* and re-derived utilities
    from the ``(R, n)`` tensor each time; the sweep builds the state
    once and answers every deadline from one histogram.  Measured on
    both sweep workloads the figures run: a budget solution (B=30,
    fig4c) and a cover solution (fig6/fig8 scale, where the per-tau
    state rebuilds the sweep amortises are much larger).
    """
    budget_seeds = lazy_greedy(
        ensemble, TotalInfluenceObjective(), DEFAULT_DEADLINE, 30
    ).seeds
    cover_seeds = solve_fair_tcim_cover(ensemble, 0.45, DEFAULT_DEADLINE).seeds

    workloads = {}
    for name, seeds in (("budget_b30", budget_seeds), ("cover", cover_seeds)):

        def per_tau_eval():
            return np.stack(
                [
                    ensemble.group_utilities(ensemble.state_for(seeds), tau)
                    for tau in DEADLINE_SWEEP
                ]
            )

        def sweep_eval():
            return ensemble.group_utilities_sweep(
                ensemble.state_for(seeds), DEADLINE_SWEEP
            )

        np.testing.assert_array_equal(sweep_eval(), per_tau_eval())
        per_tau_s = best_of(per_tau_eval)
        sweep_s = best_of(sweep_eval)
        workloads[name] = {
            "seed_set_size": len(seeds),
            "per_tau_s": round(per_tau_s, 6),
            "sweep_s": round(sweep_s, 6),
            "speedup": round(per_tau_s / sweep_s, 2),
        }
        assert sweep_s <= per_tau_s, (
            f"{name}: sweep slower than per-tau: "
            f"{sweep_s:.4f}s vs {per_tau_s:.4f}s"
        )
    record_bench(
        "deadline_sweep",
        {"n_deadlines": len(DEADLINE_SWEEP), "workloads": workloads},
    )
