"""Process-scaling smoke for shared-memory world construction.

Times ensemble *construction* — live-edge sampling plus distance-store
builds, the path threads cannot speed up (numpy/scipy glue holds the
GIL) — serially and process-sharded at 1, 2 and 4 build workers, for
the dense and sparse stores, and commits the numbers (plus the measured
``os.cpu_count()``, without which a scaling ratio is meaningless) to
``BENCH_procbuild.json``.

Peak RSS is recorded from ``resource.getrusage``: the parent's
high-water mark (``RUSAGE_SELF``) plus the reaped build workers'
(``RUSAGE_CHILDREN``).  Both are process-lifetime maxima, so the
committed numbers describe the whole benchmark run honestly rather than
pretending to per-variant deltas.

Every timed build also asserts bit-identical worlds and stores across
process counts, so the benchmark doubles as an end-to-end determinism
smoke.  As with ``bench_threads.py``, the hard floor asserted in CI is
only robustness ("process sharding is never a catastrophic
pessimisation"): on a single-core container, fork + pickle overhead is
all a pool can add, so real speedups are recorded, not asserted.
Regenerate on quiet multi-core hardware (together with
``BENCH_threads.json``, per the ROADMAP note) with::

    PYTHONPATH=src python -m pytest benchmarks/bench_procbuild.py benchmarks/bench_threads.py --benchmark-disable
"""

import os
import resource
from pathlib import Path

import numpy as np
import pytest

from conftest import best_of, record_bench

from repro.datasets.synthetic import DEFAULT_DEADLINE, default_synthetic
from repro.influence.ensemble import WorldEnsemble

PROCBUILD_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_procbuild.json"
N_WORLDS = 24
BUILD_COUNTS = (1, 2, 4)

#: CI floor: a process-sharded build may lose at most this factor to
#: serial.  Laxer than the thread benches' floor — every extra process
#: pays a real fork + graph-pickle toll that a single-core runner can
#: never win back.
MAX_SLOWDOWN = 3.0


def _rss_kb():
    return {
        "parent_peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "children_peak_rss_kb": resource.getrusage(
            resource.RUSAGE_CHILDREN
        ).ru_maxrss,
    }


@pytest.fixture(scope="module", autouse=True)
def graph_section():
    graph, assignment = default_synthetic(seed=0)
    record_bench(
        "graph",
        {
            "dataset": "default_synthetic(seed=0)",
            "nodes": graph.number_of_nodes(),
            "directed_edges": graph.number_of_edges(),
            "n_worlds": N_WORLDS,
            "cpu_count": os.cpu_count(),
        },
        path=PROCBUILD_RESULTS_PATH,
    )
    return graph, assignment


@pytest.mark.parametrize("backend", ("dense", "sparse"))
def test_construction_process_scaling(graph_section, backend):
    """Serial vs process-sharded build of one full distance store."""
    graph, assignment = graph_section
    rows = []
    reference = None
    serial_s = None
    for build_workers in BUILD_COUNTS:

        def build():
            ensemble = WorldEnsemble(
                graph,
                assignment,
                n_worlds=N_WORLDS,
                seed=5,
                backend=backend,
                build_workers=build_workers,
            )
            ensemble.close()
            return ensemble

        # Identity check outside the timed loop: worlds and a probe
        # utility must match the serial build bit for bit.
        ensemble = WorldEnsemble(
            graph,
            assignment,
            n_worlds=N_WORLDS,
            seed=5,
            backend=backend,
            build_workers=build_workers,
        )
        assert ensemble.build_workers_used == build_workers
        state = ensemble.state_for(ensemble.candidate_labels[:4])
        utilities = ensemble.group_utilities(state, DEFAULT_DEADLINE)
        if reference is None:
            reference = utilities
        else:
            np.testing.assert_array_equal(utilities, reference)
        ensemble.close()

        elapsed = best_of(build, repeats=2)
        if serial_s is None:
            serial_s = elapsed
        rows.append(
            {
                "build_workers": build_workers,
                "time_s": round(elapsed, 6),
                "speedup": round(serial_s / elapsed, 2),
                **_rss_kb(),
            }
        )
    record_bench(
        f"{backend}_build_process_scaling",
        {"backend": backend, "n_worlds": N_WORLDS, "points": rows},
        path=PROCBUILD_RESULTS_PATH,
    )
    worst = min(row["speedup"] for row in rows)
    assert worst >= 1.0 / MAX_SLOWDOWN, (
        f"process-sharded {backend} build catastrophically slower than "
        f"serial: {rows}"
    )
