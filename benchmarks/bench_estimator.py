"""Micro-benchmarks for the influence-estimation hot paths.

These are the operations the greedy solvers call thousands of times;
their cost profile is what makes paper-scale sweeps tractable:

- ensemble construction (world sampling + distance store, once per
  experiment) — for each distance backend;
- full utility evaluation of a seed set (once per accepted seed);
- a marginal-gain query (the CELF inner loop) — for each backend.

The memory-footprint test additionally *asserts* the sparse backend's
core promise (its store must be well under the dense tensor on the
synthetic benchmark graph) and records the measured footprints in
``BENCH_estimator.json`` next to this file.
"""

import json
import math
from pathlib import Path

import pytest

from repro.datasets.synthetic import default_synthetic
from repro.influence.backends import BACKEND_NAMES
from repro.influence.ensemble import WorldEnsemble

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_estimator.json"


@pytest.fixture(scope="module")
def dataset():
    return default_synthetic(seed=0)


@pytest.fixture(scope="module")
def ensemble(dataset):
    graph, assignment = dataset
    return WorldEnsemble(graph, assignment, n_worlds=100, seed=1)


@pytest.fixture(scope="module", params=BACKEND_NAMES)
def backend_ensemble(request, dataset):
    graph, assignment = dataset
    return WorldEnsemble(
        graph, assignment, n_worlds=100, seed=1, backend=request.param
    )


def test_ensemble_construction(benchmark, dataset):
    graph, assignment = dataset

    def build():
        return WorldEnsemble(graph, assignment, n_worlds=50, seed=2)

    result = benchmark(build)
    assert result.n_worlds == 50


def test_state_construction_30_seeds(benchmark, ensemble):
    seeds = ensemble.candidate_labels[:30]
    state = benchmark(ensemble.state_for, seeds)
    assert state.size == 30


def test_group_utility_evaluation(benchmark, ensemble):
    state = ensemble.state_for(ensemble.candidate_labels[:30])
    utilities = benchmark(ensemble.group_utilities, state, 20)
    assert utilities.sum() > 0


def test_marginal_gain_query(benchmark, ensemble):
    state = ensemble.state_for(ensemble.candidate_labels[:10])
    utilities = benchmark(
        ensemble.candidate_group_utilities, state, 450, 20
    )
    assert utilities.sum() >= 0


def test_infinite_deadline_evaluation(benchmark, ensemble):
    state = ensemble.state_for(ensemble.candidate_labels[:5])
    total = benchmark(ensemble.total_utility, state, math.inf)
    assert total >= 5


def test_backend_construction(benchmark, dataset):
    """Sparse-store construction cost (batched frontier BFS per world)."""
    graph, assignment = dataset

    def build():
        return WorldEnsemble(graph, assignment, n_worlds=50, seed=2, backend="sparse")

    result = benchmark(build)
    assert result.backend_name == "sparse"


def test_backend_marginal_gain_query(benchmark, backend_ensemble):
    """The CELF inner loop under each backend."""
    state = backend_ensemble.state_for(backend_ensemble.candidate_labels[:10])
    utilities = benchmark(
        backend_ensemble.candidate_group_utilities, state, 450, 20
    )
    assert utilities.sum() >= 0


def test_backend_full_evaluation(benchmark, backend_ensemble):
    """Per-accepted-seed utility evaluation under each backend."""
    state = backend_ensemble.state_for(backend_ensemble.candidate_labels[:30])
    utilities = benchmark(backend_ensemble.group_utilities, state, 20)
    assert utilities.sum() > 0


def test_backend_memory_footprint(dataset):
    """The sparse backend's reason to exist, asserted and recorded.

    On the synthetic SBM (p_e = 0.05, reach is tiny relative to n) the
    CSR store must come in far below the dense tensor.  Footprints for
    all backends go to ``BENCH_estimator.json`` so regressions are
    visible in review diffs.
    """
    graph, assignment = dataset
    n_worlds = 100
    ensembles = {
        backend: WorldEnsemble(
            graph, assignment, n_worlds=n_worlds, seed=1, backend=backend
        )
        for backend in BACKEND_NAMES
    }
    footprints = {b: e.memory_bytes() for b, e in ensembles.items()}

    # Exercise the lazy cache so its steady-state footprint is honest.
    lazy = ensembles["lazy"]
    state = lazy.empty_state()
    for position in range(min(lazy.n_candidates, 64)):
        lazy.candidate_group_utilities(state, position, 20)
    footprints["lazy"] = lazy.memory_bytes()

    assert footprints["sparse"] < footprints["dense"] / 4, (
        f"sparse store {footprints['sparse']}B vs dense "
        f"{footprints['dense']}B — the O(nnz) promise regressed"
    )
    assert footprints["lazy"] < footprints["dense"], (
        "lazy cache should stay below the full dense tensor"
    )

    record = {
        "graph": {
            "nodes": graph.number_of_nodes(),
            "directed_edges": graph.number_of_edges(),
            "dataset": "default_synthetic(seed=0)",
        },
        "n_worlds": n_worlds,
        "memory_bytes": footprints,
        "sparse_over_dense": footprints["sparse"] / footprints["dense"],
        "lazy_cache_entries": lazy.backend.cache_entries,
    }
    RESULTS_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def test_rr_set_sampling(benchmark, dataset):
    """RIS substrate: sampling 2000 time-critical RR sets."""
    from repro.influence.rrsets import sample_rr_sets

    graph, _ = dataset
    collection = benchmark(sample_rr_sets, graph, 20, 2000, 3)
    assert collection.count == 2000


def test_ris_greedy_p1(benchmark, dataset):
    """RIS greedy max-cover for P1 (scalable unfair baseline)."""
    from repro.influence.rrsets import ris_greedy, sample_rr_sets

    graph, _ = dataset
    collection = sample_rr_sets(graph, 20, 2000, seed=3)
    seeds, estimate = benchmark(ris_greedy, collection, 10)
    assert len(seeds) == 10
    assert estimate > 0
