"""Micro-benchmarks for the influence-estimation hot paths.

These are the operations the greedy solvers call thousands of times;
their cost profile is what makes paper-scale sweeps tractable:

- ensemble construction (world sampling + distance tensors, once per
  experiment);
- full utility evaluation of a seed set (once per accepted seed);
- a marginal-gain query (the CELF inner loop).
"""

import math

import pytest

from repro.datasets.synthetic import default_synthetic
from repro.influence.ensemble import WorldEnsemble


@pytest.fixture(scope="module")
def dataset():
    return default_synthetic(seed=0)


@pytest.fixture(scope="module")
def ensemble(dataset):
    graph, assignment = dataset
    return WorldEnsemble(graph, assignment, n_worlds=100, seed=1)


def test_ensemble_construction(benchmark, dataset):
    graph, assignment = dataset

    def build():
        return WorldEnsemble(graph, assignment, n_worlds=50, seed=2)

    result = benchmark(build)
    assert result.n_worlds == 50


def test_state_construction_30_seeds(benchmark, ensemble):
    seeds = ensemble.candidate_labels[:30]
    state = benchmark(ensemble.state_for, seeds)
    assert state.size == 30


def test_group_utility_evaluation(benchmark, ensemble):
    state = ensemble.state_for(ensemble.candidate_labels[:30])
    utilities = benchmark(ensemble.group_utilities, state, 20)
    assert utilities.sum() > 0


def test_marginal_gain_query(benchmark, ensemble):
    state = ensemble.state_for(ensemble.candidate_labels[:10])
    utilities = benchmark(
        ensemble.candidate_group_utilities, state, 450, 20
    )
    assert utilities.sum() >= 0


def test_infinite_deadline_evaluation(benchmark, ensemble):
    state = ensemble.state_for(ensemble.candidate_labels[:5])
    total = benchmark(ensemble.total_utility, state, math.inf)
    assert total >= 5


def test_rr_set_sampling(benchmark, dataset):
    """RIS substrate: sampling 2000 time-critical RR sets."""
    from repro.influence.rrsets import sample_rr_sets

    graph, _ = dataset
    collection = benchmark(sample_rr_sets, graph, 20, 2000, 3)
    assert collection.count == 2000


def test_ris_greedy_p1(benchmark, dataset):
    """RIS greedy max-cover for P1 (scalable unfair baseline)."""
    from repro.influence.rrsets import ris_greedy, sample_rr_sets

    graph, _ = dataset
    collection = sample_rr_sets(graph, 20, 2000, seed=3)
    seeds, estimate = benchmark(ris_greedy, collection, 10)
    assert len(seeds) == 10
    assert estimate > 0
