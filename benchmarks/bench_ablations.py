"""Benchmarks: ablations on the design choices DESIGN.md calls out."""

from conftest import run_and_check


def test_abl_h_curvature_frontier(benchmark):
    run_and_check(benchmark, "abl_h")


def test_abl_celf_vs_plain(benchmark):
    run_and_check(benchmark, "abl_celf")


def test_abl_sample_stability(benchmark):
    run_and_check(benchmark, "abl_samples")


def test_abl_linear_threshold(benchmark):
    run_and_check(benchmark, "abl_lt")


def test_ext_time_discounting(benchmark):
    run_and_check(benchmark, "ext_discount")
