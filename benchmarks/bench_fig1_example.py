"""Benchmark: Figure 1 — the illustrative-example table.

Regenerates the optimal-P1 vs optimal-P4 comparison on the 38-node
two-group example across deadlines tau in {2, 4, inf}.
"""

from conftest import run_and_check


def test_fig1_illustrative_example(benchmark):
    run_and_check(benchmark, "fig1")
